"""Solver-wide performance bench: ``python -m repro bench``.

Replays a fixed matrix × storage-format grid through the traced
CB-GMRES solver and merges two views of every solve:

* **observed** — wall-clock spans from a :class:`repro.observe.Tracer`
  threaded through the solver, basis, accessors, codec and SpMV;
* **modeled** — the GPU timing model's predicted per-kernel seconds
  (:meth:`repro.gpu.timing.GmresTimingModel.phase_times`), the quantity
  the paper's Fig. 11 argues about.

The merged per-phase attribution (``spmv`` / ``preconditioner`` /
``orthogonalize`` / ``basis_read`` / ``basis_write`` / ``update`` /
``other``) is emitted as
a schema-versioned ``BENCH_gmres.json`` so successive commits leave a
comparable perf trajectory; ``compare_bench`` diffs two such files and
flags regressions beyond a tolerance (convergence lost, iteration-count
or modeled-time growth).  Wall-clock seconds are recorded but never
compared — they depend on the host — while iteration counts and modeled
times are deterministic for a fixed grid.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..gpu.device import DeviceSpec, H100_PCIE
from ..gpu.timing import GmresTimingModel
from ..jit import dispatch as _dispatch
from ..observe import NULL_TRACER, Tracer
from ..parallel import run_grid
from ..solvers.adaptive import ADAPTIVE_STORAGE
from ..solvers.basis import BASIS_MODES
from ..solvers.gmres import CbGmres
from ..solvers.preconditioner import (
    PRECONDITIONERS,
    PREC_STORAGES,
    make_preconditioner,
)
from ..solvers.problems import make_problem
from ..sparse.engine import SPMV_FORMATS
from ..sparse.suite import resolve_scale, suite_names

__all__ = [
    "BENCH_SCHEMA",
    "BENCH_SCHEMA_VERSION",
    "BENCH_PHASES",
    "BENCH_BASIS_MODES",
    "DEFAULT_BENCH_STORAGES",
    "DEFAULT_BENCH_MATRICES",
    "DEFAULT_PREC_TIER",
    "PRECISION_BASELINE_STORAGE",
    "Regression",
    "run_bench_entry",
    "run_bench",
    "validate_bench",
    "write_bench",
    "load_bench",
    "compare_bench",
]

#: schema identifier embedded in every bench file
BENCH_SCHEMA = "repro.bench.gmres"
#: bump on any incompatible change to the document layout
#: (v2: top-level ``spmv_format`` + per-entry ``spmv`` block;
#: v3: top-level ``basis_mode`` + per-entry ``basis`` block with
#: per-mode wall time / peak float64 bytes and modeled fused-kernel time;
#: v4: ``adaptive`` joins the default storage grid and adaptive entries
#: carry a ``precision`` block — per-restart storage trace, modeled
#: stored-basis bytes saved vs a fixed frsz2_32 companion solve, and the
#: iteration-count delta;
#: v5: kernel backends — top-level and per-entry ``backend`` blocks
#: recording the requested/resolved backend and jit engine, a
#: best-of-rounds codec write+read microbench with ``speedup_vs_numpy``
#: on codec-bound (frsz2_*) entries, and an in-bench full-solve
#: jit-vs-numpy bit-identity gate that refuses to emit on divergence;
#: every entry is preceded by an untimed warm-up solve so jit compile
#: and first-round cold caches never pollute the timed regions;
#: v6: preconditioning tier — ``preconditioner`` joins the phase keys,
#: the document records the grid's ``preconditioner``/``prec_storage``,
#: preconditioned entries carry a ``preconditioner`` block (setup
#: seconds, apply count, stored-preconditioner bytes vs float64, and
#: iteration ratio / wall speedup against an untraced unpreconditioned
#: companion solve), and the default grid appends a preconditioned
#: tier: ILU(0) on the two stalling stencil scenarios plus a
#: frsz2_16-compressed block-Jacobi entry)
BENCH_SCHEMA_VERSION = 6
#: per-phase attribution keys (observe span names + the remainder)
BENCH_PHASES = (
    "spmv",
    "preconditioner",
    "orthogonalize",
    "basis_read",
    "basis_write",
    "update",
    "other",
)
#: basis modes every entry's ``basis.modes`` block must cover
BENCH_BASIS_MODES = BASIS_MODES
#: the storage grid the perf trajectory tracks (acceptance floor)
DEFAULT_BENCH_STORAGES = ("float64", "float32", "frsz2_32", "adaptive")
#: fixed-storage companion every adaptive entry's ``precision`` block
#: measures its bytes-moved savings and iteration delta against
PRECISION_BASELINE_STORAGE = "frsz2_32"
#: small-but-varied default matrix grid (fast at smoke scale)
DEFAULT_BENCH_MATRICES = ("atmosmodd", "cfd2", "lung2")
#: (matrix, storage, preconditioner, prec_storage) cells appended to the
#: default grid (schema v6): ILU(0) on the two scenario stencils where
#: unpreconditioned CB-GMRES stalls at the iteration cap, plus
#: compressed block-Jacobi storage on a Table I matrix — together the
#: preconditioned perf trajectory the CI gate tracks
DEFAULT_PREC_TIER = (
    ("aniso_jump", "frsz2_32", "ilu0", "float64"),
    ("conv_dom", "frsz2_32", "ilu0", "float64"),
    ("bem_dense", "frsz2_32", "ilu0", "float64"),
    ("lung2", "frsz2_32", "block_jacobi", "frsz2_16"),
)

_ENTRY_SCALARS = {
    "matrix": str,
    "storage": str,
    "n": int,
    "nnz": int,
    "converged": bool,
    "iterations": int,
    "restarts": int,
    "reorthogonalizations": int,
    "final_rrn": float,
    "target_rrn": float,
    "bits_per_value": float,
    "wall_seconds": float,
    "modeled_seconds": float,
}


def _spmv_wall_seconds(op, x, rounds: int = 7, reps: int = 10) -> float:
    """Best-of-``rounds`` mean matvec wall time over ``reps`` calls.

    The minimum over rounds is the standard noise-robust wall-clock
    estimate: scheduler preemption and frequency scaling only ever make
    a round slower, never faster.
    """
    op.matvec(x)  # warm caches and lazy allocations outside the timing
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        for _ in range(reps):
            op.matvec(x)
        best = min(best, (time.perf_counter() - t0) / reps)
    return best


def _codec_cycle_seconds(
    n: int, bit_length: int, backend: str, rounds: int = 5, reps: int = 3
) -> float:
    """Best-of-``rounds`` mean FRSZ2 write+read cycle wall time.

    The per-entry ``speedup_vs_numpy`` microbench: one compress of an
    ``n``-vector followed by one full decompress, through the given
    kernel backend.  The warm-up call outside the timing absorbs the
    jit engine's one-time compile/load (and numpy's first-touch
    allocations), so best-of-rounds only ever sees steady state.
    """
    from ..accessor.frsz2_accessor import Frsz2Accessor

    rng = np.random.default_rng(0)
    values = rng.standard_normal(n)
    acc = Frsz2Accessor(n, bit_length=bit_length, backend=backend)
    acc.write(values)
    acc.read()  # warm-up: engine compile + allocations outside the timing
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        for _ in range(reps):
            acc.write(values)
            acc.read()
        best = min(best, (time.perf_counter() - t0) / reps)
    return best


def run_bench_entry(
    matrix: str,
    storage: str,
    scale: str = "smoke",
    m: int = 50,
    max_iter: int = 2000,
    target_rrn: Optional[float] = None,
    device: DeviceSpec = H100_PCIE,
    spmv_format: str = "auto",
    basis_mode: str = "cached",
    backend: str = "numpy",
    preconditioner: str = "none",
    prec_storage: str = "float64",
) -> dict:
    """Run one traced solve and return its bench entry.

    Parameters
    ----------
    matrix : str
        Suite matrix name (``python -m repro list``).
    storage : str
        Krylov-basis storage format label (``float64``, ``frsz2_32``, ...).
    scale : str, default "smoke"
        Problem scale; controls the analog matrix dimension.
    m, max_iter : int
        Restart length and iteration cap.
    target_rrn : float, optional
        Override the matrix's calibrated target.
    device : DeviceSpec
        Device model for the ``modeled_seconds`` attribution.
    spmv_format : str, default "auto"
        SpMV engine format (``auto`` / ``csr`` / ``ell`` / ``sell``);
        the entry's ``spmv`` block records the requested and resolved
        format plus a measured matvec speedup over the CSR kernel.
    basis_mode : str, default "cached"
        Basis kernel structure of the primary traced solve (``cached``
        or ``streaming``).  Both modes additionally run once untraced
        for the entry's ``basis.modes`` wall/peak-memory comparison and
        its ``bit_identical_modes`` equality check.
    backend : str, default "numpy"
        Kernel backend (``numpy``/``jit``) applied to the solver, the
        SpMV engine and the codec.  ``jit`` entries additionally run an
        untraced full solve on the numpy backend and raise
        ``ValueError`` on any bit divergence — a diverging grid refuses
        to emit a bench document.  The entry's ``backend`` block
        records the resolved backend, the jit engine name, and (for
        frsz2_* storages) the codec write+read microbench with its
        ``speedup_vs_numpy``.
    preconditioner : str, default "none"
        Right preconditioner applied to every solve in the entry
        (``none``/``jacobi``/``block_jacobi``/``ilu0``).  Preconditioned
        entries additionally run an untraced *unpreconditioned*
        companion solve and carry a ``preconditioner`` block: setup
        seconds, apply count, stored-preconditioner bytes vs float64,
        and the iteration ratio / wall speedup against that companion.
    prec_storage : str, default "float64"
        Storage rung for the preconditioner's factor values
        (``float64``/``float32``/``frsz2_32``/``frsz2_16``); decoded
        per apply, so compression trades preconditioner memory traffic
        against decode work exactly like the Krylov basis does.

    Returns
    -------
    dict
        One ``entries[]`` element of the bench schema: deterministic
        solve metrics, per-phase wall/modeled seconds, the ``spmv``
        format/speedup block, the ``basis`` fused-kernel block, and the
        tracer's counter snapshot.  Top-level callable for the
        ``--jobs`` worker pool (must stay picklable).
    """
    if basis_mode not in BASIS_MODES:
        raise ValueError(
            f"unknown basis_mode {basis_mode!r}; expected one of {BASIS_MODES}"
        )
    if preconditioner not in PRECONDITIONERS:
        raise ValueError(
            f"unknown preconditioner {preconditioner!r}; "
            f"expected one of {PRECONDITIONERS}"
        )
    if prec_storage not in PREC_STORAGES:
        raise ValueError(
            f"unknown prec_storage {prec_storage!r}; "
            f"expected one of {PREC_STORAGES}"
        )
    requested_backend = str(backend)
    backend = _dispatch.resolve_backend(backend)
    engine_name = _dispatch.jit_engine_name() if backend == "jit" else None
    problem = make_problem(matrix, scale, target_rrn=target_rrn)
    # the preconditioner is factored once from the raw CSR operator and
    # shared by every solve in the entry; setup is timed directly (it
    # happens before the tracer exists) and reported in the entry's
    # ``preconditioner`` block rather than inside wall_total
    prec = None
    prec_setup_seconds = 0.0
    if preconditioner != "none":
        pt0 = time.perf_counter()
        prec = make_preconditioner(
            preconditioner, problem.a, storage=prec_storage, backend=backend,
        )
        prec_setup_seconds = time.perf_counter() - pt0
    # untimed warm-up pass (schema v5): a single-restart solve touches
    # every kernel family first, so the jit engine's one-time compile
    # and the numpy path's first-round cold caches are paid here, never
    # inside wall_total or the best-of-rounds microbenches below
    CbGmres(
        problem.a, storage, m=m, max_iter=m,
        spmv_format=spmv_format, basis_mode=basis_mode, backend=backend,
        preconditioner=prec,
    ).solve(problem.b, problem.target_rrn)
    tracer = Tracer()

    # the operator and the preconditioner are shared across the traced
    # solve and several untraced companions; these toggles keep their
    # spans/counters scoped to the traced solve only
    def _untrace() -> None:
        problem.a.tracer = NULL_TRACER
        if prec is not None:
            prec.tracer = NULL_TRACER

    def _retrace() -> None:
        problem.a.tracer = tracer
        if prec is not None:
            prec.tracer = tracer

    _retrace()
    solver = CbGmres(
        problem.a, storage, m=m, max_iter=max_iter,
        spmv_format=spmv_format, basis_mode=basis_mode, tracer=tracer,
        backend=backend, preconditioner=prec,
    )
    t0 = time.perf_counter()
    result = solver.solve(problem.b, problem.target_rrn)
    wall_total = time.perf_counter() - t0

    # observed wall seconds per phase; orthogonalize/update report time
    # *exclusive* of the basis reads nested inside them, and the
    # preconditioner applies sit outside the other phase spans, so the
    # seven phases partition the solve without double counting
    wall = {
        "spmv": tracer.total_seconds("spmv"),
        "preconditioner": tracer.total_seconds("prec.apply"),
        "basis_read": tracer.total_seconds("basis_read"),
        "basis_write": tracer.total_seconds("basis_write"),
        "orthogonalize": tracer.total_seconds("orthogonalize")
        - tracer.total_seconds("basis_read", under="orthogonalize"),
        "update": tracer.total_seconds("update")
        - tracer.total_seconds("basis_read", under="update"),
    }
    wall["other"] = max(wall_total - sum(wall.values()), 0.0)

    modeled = GmresTimingModel(device).phase_times(
        result.stats, storage,
        prec_info=prec.cost_info() if prec is not None else None,
    )

    # surface the decoded-block cache's hit rate whenever the storage
    # format performed any cache lookups (zero keys would otherwise be
    # absent from the tracer's sparse counter dict)
    hits = tracer.counters.get("accessor.cache.hits", 0)
    misses = tracer.counters.get("accessor.cache.misses", 0)
    if hits or misses:
        tracer.counters["accessor.cache.hits"] = hits
        tracer.counters["accessor.cache.misses"] = misses
        tracer.counters["accessor.cache.hit_rate"] = hits / (hits + misses)

    # measured SpMV speedup over the CSR kernel: time the engine's
    # matvec and the raw CSR matvec back to back with tracing disabled
    # (spans would perturb both sides).  When the resolved format *is*
    # CSR the two operators are the same object, so the speedup is
    # exactly 1.0 by construction rather than timing noise.
    engine = solver.a
    resolved = getattr(engine, "resolved_format", "csr")
    padding_ratio = float(getattr(engine, "padding_ratio", 1.0))
    _untrace()
    try:
        if engine is problem.a or getattr(engine, "impl", None) is problem.a:
            spmv_wall = csr_wall = _spmv_wall_seconds(problem.a, problem.b)
            speedup = 1.0
        else:
            spmv_wall = _spmv_wall_seconds(engine, problem.b)
            csr_wall = _spmv_wall_seconds(problem.a, problem.b)
            speedup = csr_wall / spmv_wall if spmv_wall > 0 else 1.0
    finally:
        _retrace()
    tracer.counters["spmv.padding_ratio"] = padding_ratio

    # per-mode comparison: run both basis modes untraced (spans would
    # perturb the wall clocks) on the same operator, record wall time
    # and peak float64 working set, and check the modes' outputs for
    # exact equality — the determinism contract of the fused kernels
    mode_blocks: Dict[str, dict] = {}
    mode_results: Dict[str, object] = {}
    _untrace()
    try:
        for mode in BENCH_BASIS_MODES:
            mode_solver = CbGmres(
                engine, storage, m=m, max_iter=max_iter, basis_mode=mode,
                backend=backend, preconditioner=prec,
            )
            mt0 = time.perf_counter()
            mode_result = mode_solver.solve(problem.b, problem.target_rrn)
            mode_blocks[mode] = {
                "wall_seconds": float(time.perf_counter() - mt0),
                "peak_float64_bytes": int(
                    mode_result.stats.basis_peak_float64_bytes
                ),
            }
            mode_results[mode] = mode_result
    finally:
        _retrace()
    rc, rs = mode_results["cached"], mode_results["streaming"]
    bit_identical = bool(
        rc.iterations == rs.iterations
        and np.array_equal(rc.x, rs.x)
        and [s.rrn for s in rc.history] == [s.rrn for s in rs.history]
    )

    # adaptive entries report the controller's decisions and their
    # payoff against an untraced fixed-storage companion solve on the
    # same operator: modeled stored-basis bytes saved and the
    # iteration-count delta — the acceptance criteria of the adaptive
    # controller, kept per commit in the trajectory file
    precision_block: Optional[dict] = None
    if storage == ADAPTIVE_STORAGE:
        model = GmresTimingModel(device)
        _untrace()
        try:
            fixed = CbGmres(
                engine, PRECISION_BASELINE_STORAGE, m=m, max_iter=max_iter,
                basis_mode=basis_mode, backend=backend, preconditioner=prec,
            ).solve(problem.b, problem.target_rrn)
        finally:
            _retrace()
        adaptive_bytes = model.basis_bytes_moved(result.stats, storage)
        fixed_bytes = model.basis_bytes_moved(
            fixed.stats, PRECISION_BASELINE_STORAGE
        )
        precision_block = {
            "baseline_storage": PRECISION_BASELINE_STORAGE,
            "trace": [str(s) for s in result.stats.storage_trace],
            "decisions": [
                {
                    "restart": int(d.restart),
                    "storage": str(d.storage),
                    "rrn": float(d.rrn),
                    "needed_gain": float(d.needed_gain),
                    "reason": str(d.reason),
                }
                for d in result.precision_trace
            ],
            "upshifts": int(result.stats.precision_upshifts),
            "downshifts": int(result.stats.precision_downshifts),
            "reads_by_storage": {
                str(f): int(c)
                for f, c in sorted(result.stats.reads_by_storage.items())
            },
            "writes_by_storage": {
                str(f): int(c)
                for f, c in sorted(result.stats.writes_by_storage.items())
            },
            "adaptive_basis_bytes": float(adaptive_bytes),
            "baseline_basis_bytes": float(fixed_bytes),
            "bytes_saved_fraction": float(
                1.0 - adaptive_bytes / fixed_bytes if fixed_bytes else 0.0
            ),
            "baseline_iterations": int(fixed.iterations),
            "iterations_delta_fraction": float(
                (result.iterations - fixed.iterations) / fixed.iterations
                if fixed.iterations
                else 0.0
            ),
            "baseline_converged": bool(fixed.converged),
        }

    # preconditioned entries measure their payoff against an untraced
    # *unpreconditioned* companion on the same operator: the iteration
    # ratio (the convergence win) and the wall speedup (whether the win
    # survives the per-iteration apply cost).  Runs before the backend
    # gate below, which flips the shared engine's kernels to numpy.
    prec_block: Optional[dict] = None
    if prec is not None:
        _untrace()
        try:
            bt0 = time.perf_counter()
            base = CbGmres(
                engine, storage, m=m, max_iter=max_iter,
                basis_mode=basis_mode, backend=backend,
            ).solve(problem.b, problem.target_rrn)
            baseline_wall = time.perf_counter() - bt0
        finally:
            _retrace()
        info = prec.cost_info()
        prec_block = {
            "name": str(preconditioner),
            "storage": str(prec_storage),
            "setup_seconds": float(prec_setup_seconds),
            "applies": int(result.stats.preconditioner_applies),
            "stored_bytes": int(info["stored_bytes"]),
            "float64_bytes": int(info["float64_bytes"]),
            "bytes_saved_fraction": float(
                1.0 - info["stored_bytes"] / info["float64_bytes"]
                if info["float64_bytes"]
                else 0.0
            ),
            "baseline_iterations": int(base.iterations),
            "baseline_converged": bool(base.converged),
            "iteration_ratio": float(
                result.iterations / base.iterations
                if base.iterations
                else 0.0
            ),
            "wall_speedup": float(
                baseline_wall / wall_total if wall_total > 0 else 1.0
            ),
        }

    # backend block (schema v5).  jit entries re-run the full solve on
    # the numpy reference backend and must match bit for bit — a
    # diverging jit kernel refuses to emit rather than record timings
    # for a different computation.  This gate runs last because it
    # flips the shared engine's kernels to numpy in place.  The
    # reference solve rebuilds the preconditioner on the numpy backend
    # so the gate covers the triangular-solve/block-apply kernels too.
    bit_identical_numpy = True
    if backend == "jit":
        ref_prec = None
        if preconditioner != "none":
            ref_prec = make_preconditioner(
                preconditioner, problem.a, storage=prec_storage,
                backend="numpy",
            )
        _untrace()
        try:
            ref = CbGmres(
                engine, storage, m=m, max_iter=max_iter,
                basis_mode=basis_mode, backend="numpy",
                preconditioner=ref_prec,
            ).solve(problem.b, problem.target_rrn)
        finally:
            _retrace()
        bit_identical_numpy = bool(
            ref.iterations == result.iterations
            and np.array_equal(ref.x, result.x)
            and [s.rrn for s in ref.history] == [s.rrn for s in result.history]
        )
        if not bit_identical_numpy:
            raise ValueError(
                f"jit backend diverged from numpy on {matrix}/{storage}: "
                "refusing to emit a bench entry for a different computation"
            )
    codec_wall = numpy_codec_wall = speedup_vs_numpy = None
    if storage.startswith("frsz2_"):
        bit_length = int(storage.split("_", 1)[1])
        numpy_codec_wall = _codec_cycle_seconds(
            int(result.stats.n), bit_length, "numpy"
        )
        if backend == "jit":
            codec_wall = _codec_cycle_seconds(
                int(result.stats.n), bit_length, "jit"
            )
        else:
            codec_wall = numpy_codec_wall
        speedup_vs_numpy = (
            numpy_codec_wall / codec_wall if codec_wall > 0 else 1.0
        )
    backend_block = {
        "requested": requested_backend,
        "resolved": str(backend),
        "engine": engine_name,
        "bit_identical_numpy": bit_identical_numpy,
        "codec_wall_seconds": codec_wall,
        "numpy_codec_wall_seconds": numpy_codec_wall,
        "speedup_vs_numpy": speedup_vs_numpy,
    }

    return {
        "matrix": matrix,
        "storage": storage,
        "n": int(result.stats.n),
        "nnz": int(result.stats.nnz),
        "converged": bool(result.converged),
        "iterations": int(result.iterations),
        "restarts": int(result.stats.restarts),
        "reorthogonalizations": int(result.stats.reorthogonalizations),
        "final_rrn": float(result.final_rrn),
        "target_rrn": float(result.target_rrn),
        "bits_per_value": float(result.stats.bits_per_value),
        "wall_seconds": float(wall_total),
        "modeled_seconds": float(sum(modeled.values())),
        "backend": backend_block,
        "spmv": {
            "requested": str(spmv_format),
            "format": str(resolved),
            "padding_ratio": padding_ratio,
            "padded_entries": int(getattr(engine, "padded_entries", problem.a.nnz)),
            "wall_seconds": float(spmv_wall),
            "csr_wall_seconds": float(csr_wall),
            "speedup_vs_csr": float(speedup),
        },
        "basis": {
            "mode": str(basis_mode),
            "tile_elems": int(result.stats.basis_tile_elems),
            "peak_float64_bytes": int(result.stats.basis_peak_float64_bytes),
            "stored_bytes_per_vector": int(
                round(result.stats.bits_per_value * result.stats.n / 8)
            ),
            "modeled_fused_seconds": float(
                GmresTimingModel(device).fused_kernel_seconds(
                    result.stats, storage
                )
            ),
            "bit_identical_modes": bit_identical,
            "modes": mode_blocks,
        },
        "phases": {
            phase: {
                "wall_seconds": float(wall[phase]),
                "modeled_seconds": float(modeled[phase]),
            }
            for phase in BENCH_PHASES
        },
        "counters": {
            str(k): (float(v) if isinstance(v, float) else int(v))
            for k, v in sorted(tracer.counters.items())
        },
        **({"precision": precision_block} if precision_block else {}),
        **({"preconditioner": prec_block} if prec_block else {}),
    }


def run_bench(
    matrices: Optional[Sequence[str]] = None,
    storages: Optional[Sequence[str]] = None,
    scale: Optional[str] = "smoke",
    m: int = 50,
    max_iter: int = 2000,
    target_rrn: Optional[float] = None,
    device: DeviceSpec = H100_PCIE,
    jobs: int = 1,
    spmv_format: str = "auto",
    basis_mode: str = "cached",
    backend: str = "numpy",
    preconditioner: str = "none",
    prec_storage: str = "float64",
) -> dict:
    """Run the full grid and return the schema-versioned bench document.

    Parameters
    ----------
    matrices, storages : sequence of str, optional
        Grid axes; defaults are the acceptance-floor grid.
    scale : str, optional
        Problem scale (``smoke`` / ``default`` / ``paper``).
    m, max_iter : int
        Restart length and iteration cap passed to every solve.
    target_rrn : float, optional
        Override the per-matrix calibrated targets.
    device : DeviceSpec
        Device model used for the ``modeled_seconds`` attribution.
    jobs : int, default 1
        Worker processes for the grid (:mod:`repro.parallel`).  Every
        cell is an independent deterministic solve, so any ``jobs``
        value produces identical deterministic metrics (iterations,
        modeled seconds, counters); only ``wall_seconds`` varies.
        ``1`` keeps the historical serial path.
    spmv_format : str, default "auto"
        SpMV engine format applied to every cell (``--spmv-format``);
        ``auto`` selections are deterministic per matrix, so the grid's
        resolved formats are part of the reproducible trajectory.
    basis_mode : str, default "cached"
        Basis kernel structure of every cell's primary traced solve
        (``--basis-mode``); each entry's ``basis.modes`` block always
        times *both* modes regardless.
    backend : str, default "numpy"
        Kernel backend (``--backend``) applied to every cell.  The
        document's top-level ``backend`` block records the requested
        and resolved backend plus the geometric-mean codec
        ``speedup_vs_numpy`` over the grid's codec-bound (frsz2_*)
        entries; any jit-vs-numpy bit divergence in a cell raises
        before a document is produced.
    preconditioner, prec_storage : str
        Right preconditioner (``--preconditioner``) and its factor
        storage rung (``--prec-storage``) applied to every cell.  When
        the matrix grid is the default *and* no preconditioner is
        requested, the document additionally appends the
        ``DEFAULT_PREC_TIER`` cells — the preconditioned trajectory —
        so the acceptance-floor file always tracks both regimes.
    """
    if spmv_format not in SPMV_FORMATS:
        raise ValueError(
            f"unknown SpMV format {spmv_format!r}; expected one of {SPMV_FORMATS}"
        )
    if basis_mode not in BASIS_MODES:
        raise ValueError(
            f"unknown basis_mode {basis_mode!r}; expected one of {BASIS_MODES}"
        )
    if backend not in _dispatch.BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; "
            f"expected one of {_dispatch.BACKENDS}"
        )
    if preconditioner not in PRECONDITIONERS:
        raise ValueError(
            f"unknown preconditioner {preconditioner!r}; "
            f"expected one of {PRECONDITIONERS}"
        )
    if prec_storage not in PREC_STORAGES:
        raise ValueError(
            f"unknown prec_storage {prec_storage!r}; "
            f"expected one of {PREC_STORAGES}"
        )
    scale = resolve_scale(scale)
    default_grid = matrices is None
    matrices = list(matrices) if matrices else list(DEFAULT_BENCH_MATRICES)
    storages = list(storages) if storages else list(DEFAULT_BENCH_STORAGES)
    unknown = [name for name in matrices if name not in suite_names()]
    if unknown:
        raise KeyError(
            f"unknown matrices {unknown}; suite: {', '.join(suite_names())}"
        )
    grid = [(matrix, storage) for matrix in matrices for storage in storages]
    kwargs = [
        dict(matrix=matrix, storage=storage, scale=scale, m=m,
             max_iter=max_iter, target_rrn=target_rrn, device=device,
             spmv_format=spmv_format, basis_mode=basis_mode,
             backend=backend, preconditioner=preconditioner,
             prec_storage=prec_storage)
        for matrix, storage in grid
    ]
    labels = [f"bench[{matrix}/{storage}]" for matrix, storage in grid]
    # schema v6: the acceptance-floor document always carries the
    # preconditioned tier alongside the unpreconditioned grid; explicit
    # matrix selections or an explicit preconditioner opt out
    if default_grid and preconditioner == "none":
        for mx, st, pname, pstorage in DEFAULT_PREC_TIER:
            kwargs.append(
                dict(matrix=mx, storage=st, scale=scale, m=m,
                     max_iter=max_iter, target_rrn=target_rrn, device=device,
                     spmv_format=spmv_format, basis_mode=basis_mode,
                     backend=backend, preconditioner=pname,
                     prec_storage=pstorage)
            )
            labels.append(f"bench[{mx}/{st}+{pname}]")
    entries = run_grid(run_bench_entry, kwargs, jobs=jobs, labels=labels)
    # grid-wide backend summary: every cell resolved identically (the
    # same process/worker environment), so the first entry's resolution
    # speaks for the grid; the geomean covers codec-bound entries only
    speedups = [
        e["backend"]["speedup_vs_numpy"]
        for e in entries
        if e["backend"]["speedup_vs_numpy"] is not None
    ]
    geomean = (
        float(np.exp(np.mean(np.log(speedups)))) if speedups else None
    )
    backend_block = {
        "requested": str(backend),
        "resolved": entries[0]["backend"]["resolved"] if entries else str(backend),
        "engine": entries[0]["backend"]["engine"] if entries else None,
        "codec_speedup_geomean": geomean,
    }
    return {
        "schema": BENCH_SCHEMA,
        "schema_version": BENCH_SCHEMA_VERSION,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "device": device.name,
        "scale": scale,
        "restart": int(m),
        "max_iter": int(max_iter),
        "spmv_format": str(spmv_format),
        "basis_mode": str(basis_mode),
        "preconditioner": str(preconditioner),
        "prec_storage": str(prec_storage),
        "backend": backend_block,
        "matrices": matrices,
        "storages": storages,
        "entries": entries,
    }


# ----------------------------------------------------------------------
# schema validation
# ----------------------------------------------------------------------


def _expect(cond: bool, where: str, message: str) -> None:
    if not cond:
        raise ValueError(f"bench schema violation at {where}: {message}")


def _expect_number(value: object, where: str) -> None:
    _expect(
        isinstance(value, (int, float)) and not isinstance(value, bool),
        where,
        f"expected a number, got {type(value).__name__}",
    )
    _expect(value == value and value not in (float("inf"), float("-inf")),
            where, "number must be finite")


def validate_bench(doc: dict) -> None:
    """Validate a bench document; raises ``ValueError`` naming the field."""
    _expect(isinstance(doc, dict), "$", "document must be an object")
    _expect(doc.get("schema") == BENCH_SCHEMA, "$.schema",
            f"expected {BENCH_SCHEMA!r}, got {doc.get('schema')!r}")
    _expect(doc.get("schema_version") == BENCH_SCHEMA_VERSION,
            "$.schema_version",
            f"expected {BENCH_SCHEMA_VERSION}, got {doc.get('schema_version')!r}")
    for key in ("created", "device", "scale", "spmv_format", "basis_mode"):
        _expect(isinstance(doc.get(key), str), f"$.{key}", "expected a string")
    _expect(doc["spmv_format"] in ("auto", "csr", "ell", "sell"),
            "$.spmv_format",
            f"expected one of auto/csr/ell/sell, got {doc['spmv_format']!r}")
    _expect(doc["basis_mode"] in BENCH_BASIS_MODES,
            "$.basis_mode",
            f"expected one of {'/'.join(BENCH_BASIS_MODES)}, "
            f"got {doc['basis_mode']!r}")
    _expect(doc.get("preconditioner") in PRECONDITIONERS,
            "$.preconditioner",
            f"expected one of {'/'.join(PRECONDITIONERS)} (schema v6), "
            f"got {doc.get('preconditioner')!r}")
    _expect(doc.get("prec_storage") in PREC_STORAGES,
            "$.prec_storage",
            f"expected one of {'/'.join(PREC_STORAGES)} (schema v6), "
            f"got {doc.get('prec_storage')!r}")
    for key in ("restart", "max_iter"):
        _expect(isinstance(doc.get(key), int) and doc[key] > 0,
                f"$.{key}", "expected a positive integer")
    top_backend = doc.get("backend")
    _expect(isinstance(top_backend, dict), "$.backend",
            "expected a backend block (schema v5)")
    _expect(
        set(top_backend) == {"requested", "resolved", "engine",
                             "codec_speedup_geomean"},
        "$.backend",
        f"unexpected backend block keys {sorted(top_backend)}",
    )
    for key in ("requested", "resolved"):
        _expect(top_backend[key] in _dispatch.BACKENDS, f"$.backend.{key}",
                f"expected one of {'/'.join(_dispatch.BACKENDS)}, "
                f"got {top_backend[key]!r}")
    _expect(
        top_backend["engine"] is None or isinstance(top_backend["engine"], str),
        "$.backend.engine", "expected a string or null",
    )
    if top_backend["codec_speedup_geomean"] is not None:
        _expect_number(top_backend["codec_speedup_geomean"],
                       "$.backend.codec_speedup_geomean")
    for key in ("matrices", "storages"):
        _expect(
            isinstance(doc.get(key), list) and doc[key]
            and all(isinstance(v, str) for v in doc[key]),
            f"$.{key}", "expected a non-empty list of strings",
        )
    entries = doc.get("entries")
    _expect(isinstance(entries, list) and entries, "$.entries",
            "expected a non-empty list")
    for i, entry in enumerate(entries):
        where = f"$.entries[{i}]"
        _expect(isinstance(entry, dict), where, "expected an object")
        for key, typ in _ENTRY_SCALARS.items():
            _expect(key in entry, f"{where}.{key}", "missing required field")
            if typ is float:
                _expect_number(entry[key], f"{where}.{key}")
            elif typ is int:
                _expect(
                    isinstance(entry[key], int)
                    and not isinstance(entry[key], bool),
                    f"{where}.{key}", "expected an integer",
                )
            elif typ is bool:
                _expect(isinstance(entry[key], bool), f"{where}.{key}",
                        "expected a boolean")
            else:
                _expect(isinstance(entry[key], str), f"{where}.{key}",
                        "expected a string")
        eb = entry.get("backend")
        _expect(isinstance(eb, dict), f"{where}.backend",
                "expected a backend block (schema v5)")
        _expect(
            set(eb) == {"requested", "resolved", "engine",
                        "bit_identical_numpy", "codec_wall_seconds",
                        "numpy_codec_wall_seconds", "speedup_vs_numpy"},
            f"{where}.backend",
            f"unexpected backend block keys {sorted(eb)}",
        )
        for key in ("requested", "resolved"):
            _expect(eb[key] in _dispatch.BACKENDS, f"{where}.backend.{key}",
                    f"expected one of {'/'.join(_dispatch.BACKENDS)}, "
                    f"got {eb[key]!r}")
        _expect(eb["engine"] is None or isinstance(eb["engine"], str),
                f"{where}.backend.engine", "expected a string or null")
        _expect(isinstance(eb["bit_identical_numpy"], bool),
                f"{where}.backend.bit_identical_numpy", "expected a boolean")
        _expect(eb["bit_identical_numpy"] is True,
                f"{where}.backend.bit_identical_numpy",
                "a diverging backend must never be emitted")
        codec_keys = ("codec_wall_seconds", "numpy_codec_wall_seconds",
                      "speedup_vs_numpy")
        if entry.get("storage", "").startswith("frsz2_"):
            for key in codec_keys:
                _expect_number(eb[key], f"{where}.backend.{key}")
        else:
            for key in codec_keys:
                _expect(eb[key] is None, f"{where}.backend.{key}",
                        "codec microbench applies to frsz2_* entries only")
        spmv = entry.get("spmv")
        _expect(isinstance(spmv, dict), f"{where}.spmv", "expected an object")
        _expect(
            set(spmv) == {"requested", "format", "padding_ratio",
                          "padded_entries", "wall_seconds",
                          "csr_wall_seconds", "speedup_vs_csr"},
            f"{where}.spmv",
            f"unexpected spmv block keys {sorted(spmv)}",
        )
        for key in ("requested", "format"):
            _expect(isinstance(spmv[key], str), f"{where}.spmv.{key}",
                    "expected a string")
        _expect(spmv["format"] in ("csr", "ell", "sell"),
                f"{where}.spmv.format",
                f"expected a resolved format, got {spmv['format']!r}")
        _expect(
            isinstance(spmv["padded_entries"], int)
            and not isinstance(spmv["padded_entries"], bool),
            f"{where}.spmv.padded_entries", "expected an integer",
        )
        for key in ("padding_ratio", "wall_seconds", "csr_wall_seconds",
                    "speedup_vs_csr"):
            _expect_number(spmv[key], f"{where}.spmv.{key}")
        basis = entry.get("basis")
        _expect(isinstance(basis, dict), f"{where}.basis", "expected an object")
        _expect(
            set(basis) == {"mode", "tile_elems", "peak_float64_bytes",
                           "stored_bytes_per_vector", "modeled_fused_seconds",
                           "bit_identical_modes", "modes"},
            f"{where}.basis",
            f"unexpected basis block keys {sorted(basis)}",
        )
        _expect(basis["mode"] in BENCH_BASIS_MODES, f"{where}.basis.mode",
                f"expected one of {'/'.join(BENCH_BASIS_MODES)}, "
                f"got {basis['mode']!r}")
        for key in ("tile_elems", "peak_float64_bytes",
                    "stored_bytes_per_vector"):
            _expect(
                isinstance(basis[key], int) and not isinstance(basis[key], bool),
                f"{where}.basis.{key}", "expected an integer",
            )
        _expect_number(basis["modeled_fused_seconds"],
                       f"{where}.basis.modeled_fused_seconds")
        _expect(isinstance(basis["bit_identical_modes"], bool),
                f"{where}.basis.bit_identical_modes", "expected a boolean")
        modes = basis["modes"]
        _expect(isinstance(modes, dict), f"{where}.basis.modes",
                "expected an object")
        _expect(set(modes) == set(BENCH_BASIS_MODES), f"{where}.basis.modes",
                f"expected exactly the modes {sorted(BENCH_BASIS_MODES)}, "
                f"got {sorted(modes)}")
        for mode, cell in modes.items():
            mwhere = f"{where}.basis.modes.{mode}"
            _expect(isinstance(cell, dict), mwhere, "expected an object")
            _expect(set(cell) == {"wall_seconds", "peak_float64_bytes"},
                    mwhere, "expected wall_seconds and peak_float64_bytes")
            _expect_number(cell["wall_seconds"], f"{mwhere}.wall_seconds")
            _expect(
                isinstance(cell["peak_float64_bytes"], int)
                and not isinstance(cell["peak_float64_bytes"], bool),
                f"{mwhere}.peak_float64_bytes", "expected an integer",
            )
        phases = entry.get("phases")
        _expect(isinstance(phases, dict), f"{where}.phases",
                "expected an object")
        _expect(set(phases) == set(BENCH_PHASES), f"{where}.phases",
                f"expected exactly the phases {sorted(BENCH_PHASES)}, "
                f"got {sorted(phases)}")
        for phase, cell in phases.items():
            pwhere = f"{where}.phases.{phase}"
            _expect(isinstance(cell, dict), pwhere, "expected an object")
            _expect(set(cell) == {"wall_seconds", "modeled_seconds"}, pwhere,
                    "expected wall_seconds and modeled_seconds")
            _expect_number(cell["wall_seconds"], f"{pwhere}.wall_seconds")
            _expect_number(cell["modeled_seconds"], f"{pwhere}.modeled_seconds")
        counters = entry.get("counters")
        _expect(isinstance(counters, dict), f"{where}.counters",
                "expected an object")
        for name, value in counters.items():
            _expect_number(value, f"{where}.counters.{name}")
        if entry["storage"] == ADAPTIVE_STORAGE:
            _validate_precision_block(entry.get("precision"), f"{where}.precision")
        else:
            _expect("precision" not in entry, f"{where}.precision",
                    "only adaptive entries carry a precision block")
        if "preconditioner" in entry:
            _validate_preconditioner_block(
                entry["preconditioner"], f"{where}.preconditioner"
            )


def _validate_precision_block(precision: object, where: str) -> None:
    """Validate one adaptive entry's ``precision`` block (schema v4)."""
    _expect(isinstance(precision, dict), where,
            "adaptive entries must carry a precision block")
    expected = {
        "baseline_storage", "trace", "decisions", "upshifts", "downshifts",
        "reads_by_storage", "writes_by_storage", "adaptive_basis_bytes",
        "baseline_basis_bytes", "bytes_saved_fraction", "baseline_iterations",
        "iterations_delta_fraction", "baseline_converged",
    }
    _expect(set(precision) == expected, where,
            f"unexpected precision block keys {sorted(precision)}")
    _expect(isinstance(precision["baseline_storage"], str),
            f"{where}.baseline_storage", "expected a string")
    _expect(
        isinstance(precision["trace"], list) and precision["trace"]
        and all(isinstance(s, str) for s in precision["trace"]),
        f"{where}.trace", "expected a non-empty list of storage names",
    )
    decisions = precision["decisions"]
    _expect(isinstance(decisions, list) and len(decisions) == len(precision["trace"]),
            f"{where}.decisions", "expected one decision per trace entry")
    for j, dec in enumerate(decisions):
        dwhere = f"{where}.decisions[{j}]"
        _expect(isinstance(dec, dict), dwhere, "expected an object")
        _expect(set(dec) == {"restart", "storage", "rrn", "needed_gain",
                             "reason"},
                dwhere, f"unexpected decision keys {sorted(dec)}")
        for key in ("restart",):
            _expect(isinstance(dec[key], int) and not isinstance(dec[key], bool),
                    f"{dwhere}.{key}", "expected an integer")
        for key in ("storage", "reason"):
            _expect(isinstance(dec[key], str), f"{dwhere}.{key}",
                    "expected a string")
        for key in ("rrn", "needed_gain"):
            _expect_number(dec[key], f"{dwhere}.{key}")
    for key in ("upshifts", "downshifts", "baseline_iterations"):
        _expect(
            isinstance(precision[key], int) and not isinstance(precision[key], bool),
            f"{where}.{key}", "expected an integer",
        )
    for key in ("reads_by_storage", "writes_by_storage"):
        buckets = precision[key]
        _expect(
            isinstance(buckets, dict) and buckets
            and all(
                isinstance(f, str)
                and isinstance(c, int)
                and not isinstance(c, bool)
                for f, c in buckets.items()
            ),
            f"{where}.{key}",
            "expected a non-empty {storage: count} object",
        )
    for key in ("adaptive_basis_bytes", "baseline_basis_bytes",
                "bytes_saved_fraction", "iterations_delta_fraction"):
        _expect_number(precision[key], f"{where}.{key}")
    _expect(isinstance(precision["baseline_converged"], bool),
            f"{where}.baseline_converged", "expected a boolean")


def _validate_preconditioner_block(prec: object, where: str) -> None:
    """Validate one preconditioned entry's ``preconditioner`` block (v6)."""
    _expect(isinstance(prec, dict), where, "expected an object")
    expected = {
        "name", "storage", "setup_seconds", "applies", "stored_bytes",
        "float64_bytes", "bytes_saved_fraction", "baseline_iterations",
        "baseline_converged", "iteration_ratio", "wall_speedup",
    }
    _expect(set(prec) == expected, where,
            f"unexpected preconditioner block keys {sorted(prec)}")
    _expect(
        prec["name"] in PRECONDITIONERS and prec["name"] != "none",
        f"{where}.name",
        "unpreconditioned entries must not carry a preconditioner block",
    )
    _expect(prec["storage"] in PREC_STORAGES, f"{where}.storage",
            f"expected one of {'/'.join(PREC_STORAGES)}, "
            f"got {prec['storage']!r}")
    for key in ("applies", "stored_bytes", "float64_bytes",
                "baseline_iterations"):
        _expect(
            isinstance(prec[key], int) and not isinstance(prec[key], bool),
            f"{where}.{key}", "expected an integer",
        )
    for key in ("setup_seconds", "bytes_saved_fraction", "iteration_ratio",
                "wall_speedup"):
        _expect_number(prec[key], f"{where}.{key}")
    _expect(isinstance(prec["baseline_converged"], bool),
            f"{where}.baseline_converged", "expected a boolean")


# ----------------------------------------------------------------------
# persistence + comparison
# ----------------------------------------------------------------------


def write_bench(doc: dict, path: str) -> None:
    """Validate then write a bench document as pretty-printed JSON."""
    validate_bench(doc)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=False)
        fh.write("\n")


def load_bench(path: str) -> dict:
    """Read and validate a bench document."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    validate_bench(doc)
    return doc


@dataclass(frozen=True)
class Regression:
    """One flagged difference between two bench files."""

    matrix: str
    storage: str
    metric: str
    base: float
    new: float

    def __str__(self) -> str:
        return (
            f"{self.matrix}/{self.storage}: {self.metric} regressed "
            f"{self.base:.6g} -> {self.new:.6g}"
        )


def compare_bench(
    base: dict, new: dict, tolerance: float = 0.05
) -> List[Regression]:
    """Diff two bench documents; return the regressions beyond tolerance.

    Only deterministic metrics are compared: lost convergence, iteration
    count and modeled seconds growing by more than ``tolerance``
    (relative), and grid entries that disappeared.  Host-dependent
    wall-clock numbers are deliberately ignored.
    """
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    validate_bench(base)
    validate_bench(new)

    def _key(e: dict) -> tuple:
        # preconditioned and unpreconditioned entries for the same
        # matrix/storage cell are distinct trajectory points (v6)
        prec = e.get("preconditioner") or {}
        return (e["matrix"], e["storage"], prec.get("name", "none"))

    new_by_key: Dict[tuple, dict] = {_key(e): e for e in new["entries"]}
    regressions: List[Regression] = []
    for old in base["entries"]:
        key = _key(old)
        slabel = key[1] if key[2] == "none" else f"{key[1]}+{key[2]}"
        entry = new_by_key.get(key)
        if entry is None:
            regressions.append(
                Regression(key[0], slabel, "coverage (entry missing)", 1.0, 0.0)
            )
            continue
        if old["converged"] and not entry["converged"]:
            regressions.append(
                Regression(key[0], slabel, "converged", 1.0, 0.0)
            )
        for metric in ("iterations", "modeled_seconds"):
            before, after = float(old[metric]), float(entry[metric])
            if after > before * (1.0 + tolerance):
                regressions.append(
                    Regression(key[0], slabel, metric, before, after)
                )
    return regressions
