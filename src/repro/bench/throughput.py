"""Multi-RHS throughput bench: ``python -m repro throughput``.

Measures what the batched solve path is *for*: aggregate solves per
second.  Every grid cell solves the same ``B`` right-hand sides twice —

* **loop** — ``B`` independent :meth:`~repro.solvers.gmres.CbGmres.solve`
  calls, the baseline any caller could write today;
* **batch** — one :meth:`~repro.solvers.gmres.CbGmres.solve_batch` over
  the ``(n, B)`` block, which pays the FRSZ2 encode/decode passes and
  the SpMV structure once per batch instead of once per vector —

and records both wall clocks (best-of-``rounds``, the standard
noise-robust estimate: preemption only ever makes a round slower).  The
document is emitted as a schema-versioned ``BENCH_throughput.json`` so
successive commits leave a comparable trajectory.

Two correctness gates run inside every entry, not just in the test
suite:

* the batch result must match the loop result column for column
  (solution bits, iteration counts, convergence flags);
* a ``B == 1`` batch must be bit-identical to the plain solver —
  history included — so the batched path is provably a superset of
  today's behavior, never a numerically different sibling.

The default grid is the codec-bound corner of the suite (``cfd2`` /
``lung2`` at smoke scale over the FRSZ2 storages) because that is where
basis compression dominates the solve and batching the codec pays;
bandwidth-bound cells (``float64`` storage, restart-heavy
``atmosmodd``) are reachable via ``--matrices`` / ``--storages`` but
sit near parity by construction — there is no codec work to batch.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..jit import dispatch as _dispatch
from ..observe import Tracer
from ..solvers.basis import BASIS_MODES
from ..solvers.gmres import CbGmres
from ..solvers.problems import make_problem
from ..sparse.engine import SPMV_FORMATS
from ..sparse.suite import resolve_scale, suite_names

__all__ = [
    "THROUGHPUT_SCHEMA",
    "THROUGHPUT_SCHEMA_VERSION",
    "DEFAULT_THROUGHPUT_MATRICES",
    "DEFAULT_THROUGHPUT_STORAGES",
    "DEFAULT_THROUGHPUT_BATCH",
    "run_throughput_entry",
    "run_throughput",
    "validate_throughput",
    "write_throughput",
    "load_throughput",
]

#: schema identifier embedded in every throughput document
THROUGHPUT_SCHEMA = "repro.bench.throughput"
#: bump on any incompatible change to the document layout
THROUGHPUT_SCHEMA_VERSION = 1
#: default grid: the codec-bound cells where batching the FRSZ2
#: passes is the dominant win (see the module docstring)
DEFAULT_THROUGHPUT_MATRICES = ("cfd2", "lung2")
DEFAULT_THROUGHPUT_STORAGES = ("frsz2_16", "frsz2_32")
#: simultaneous right-hand sides per batch (the acceptance point)
DEFAULT_THROUGHPUT_BATCH = 8

#: RHS column ``c`` of every entry is seeded ``_RHS_SEED_BASE + c`` —
#: fixed so reruns time identical solves
_RHS_SEED_BASE = 1000

_ENTRY_SCALARS = {
    "matrix": str,
    "storage": str,
    "n": int,
    "nnz": int,
    "batch": int,
    "rounds": int,
    "loop_wall_seconds": float,
    "batch_wall_seconds": float,
    "loop_solves_per_second": float,
    "batch_solves_per_second": float,
    "speedup": float,
    "bit_identical_b1": bool,
    "bit_identical_batch": bool,
    "batched_spmv_calls": int,
    "batched_basis_writes": int,
    "batched_ortho_steps": int,
}


def _rhs_block(problem, batch: int) -> np.ndarray:
    """The fixed ``(n, batch)`` RHS block for one grid cell."""
    columns = []
    for c in range(batch):
        rng = np.random.default_rng(_RHS_SEED_BASE + c)
        x = rng.standard_normal(problem.a.shape[1])
        x /= np.linalg.norm(x)
        columns.append(problem.a.matvec(x))
    return np.stack(columns, axis=1)


def _solver(problem, storage, m, max_iter, spmv_format, basis_mode,
            tracer=None, backend=None) -> CbGmres:
    kwargs = {} if tracer is None else {"tracer": tracer}
    return CbGmres(
        problem.a, storage, m=m, max_iter=max_iter,
        spmv_format=spmv_format, basis_mode=basis_mode, backend=backend,
        **kwargs,
    )


def run_throughput_entry(
    matrix: str,
    storage: str,
    scale: str = "smoke",
    m: int = 30,
    max_iter: int = 400,
    batch: int = DEFAULT_THROUGHPUT_BATCH,
    rounds: int = 3,
    target_rrn: Optional[float] = None,
    spmv_format: str = "csr",
    basis_mode: str = "cached",
    backend: "str | None" = None,
) -> dict:
    """Time one grid cell and return its ``entries[]`` element.

    Raises
    ------
    ValueError
        If the batched solve is *not* bit-identical to the loop (column
        for column), or a ``B == 1`` batch is not bit-identical to the
        plain solver — a broken identity contract must fail the bench,
        not ship inside a throughput number.
    """
    if batch < 1:
        raise ValueError("batch must be >= 1")
    if rounds < 1:
        raise ValueError("rounds must be >= 1")
    # resolve once per cell: the warm-up solve below then pays any jit
    # engine compile before the first timed round
    backend = _dispatch.resolve_backend(backend)
    problem = make_problem(matrix, scale, target_rrn=target_rrn)
    target = problem.target_rrn
    B = _rhs_block(problem, batch)

    # untimed warm-up: compiles jit kernels and faults in cold caches
    # so the first timed round is not skewed for either strategy
    _solver(problem, storage, m, max_iter, spmv_format, basis_mode,
            backend=backend).solve(B[:, 0], target, record_history=False)

    loop_wall = batch_wall = float("inf")
    loop_results = batch_result = None
    for _ in range(rounds):
        solver = _solver(problem, storage, m, max_iter,
                         spmv_format, basis_mode, backend=backend)
        t0 = time.perf_counter()
        results = [
            solver.solve(B[:, c], target, record_history=False)
            for c in range(batch)
        ]
        elapsed = time.perf_counter() - t0
        if elapsed < loop_wall:
            loop_wall, loop_results = elapsed, results

        solver = _solver(problem, storage, m, max_iter,
                         spmv_format, basis_mode, backend=backend)
        t0 = time.perf_counter()
        result = solver.solve_batch(B, target, record_history=False)
        elapsed = time.perf_counter() - t0
        if elapsed < batch_wall:
            batch_wall, batch_result = elapsed, result

    # gate 1: the timed batch must equal the timed loop, column for
    # column — otherwise the speedup compares two different solves
    for c, (solo, col) in enumerate(zip(loop_results, batch_result)):
        if not (
            np.array_equal(solo.x, col.x)
            and solo.iterations == col.iterations
            and solo.converged == col.converged
            and solo.final_rrn == col.final_rrn
        ):
            raise ValueError(
                f"{matrix}/{storage}: batch column {c} diverged from its "
                "loop solve — bit-identity contract broken"
            )

    # gate 2: a B == 1 batch is the plain solver, history included
    solo = _solver(problem, storage, m, max_iter,
                   spmv_format, basis_mode, backend=backend).solve(B[:, 0], target)
    b1 = _solver(problem, storage, m, max_iter,
                 spmv_format, basis_mode,
                 backend=backend).solve_batch(B[:, :1], target)[0]
    if not (
        np.array_equal(solo.x, b1.x)
        and solo.iterations == b1.iterations
        and [s.rrn for s in solo.history] == [s.rrn for s in b1.history]
    ):
        raise ValueError(
            f"{matrix}/{storage}: B=1 solve_batch is not bit-identical "
            "to CbGmres.solve — identity contract broken"
        )

    # one untimed traced batch for the batched-kernel counters
    tracer = Tracer()
    counted = _solver(problem, storage, m, max_iter,
                      spmv_format, basis_mode, tracer=tracer, backend=backend)
    stats = counted.solve_batch(B, target, record_history=False)

    return {
        "matrix": matrix,
        "storage": storage,
        "n": int(problem.a.shape[0]),
        "nnz": int(problem.a.nnz),
        "batch": int(batch),
        "rounds": int(rounds),
        "iterations": [int(r.iterations) for r in batch_result],
        "converged": [bool(r.converged) for r in batch_result],
        "loop_wall_seconds": float(loop_wall),
        "batch_wall_seconds": float(batch_wall),
        "loop_solves_per_second": float(batch / loop_wall),
        "batch_solves_per_second": float(batch / batch_wall),
        "speedup": float(loop_wall / batch_wall),
        "bit_identical_b1": True,
        "bit_identical_batch": True,
        "batched_spmv_calls": int(stats.batched_spmv_calls),
        "batched_basis_writes": int(stats.batched_basis_writes),
        "batched_ortho_steps": int(stats.batched_ortho_steps),
    }


def run_throughput(
    matrices: Optional[Sequence[str]] = None,
    storages: Optional[Sequence[str]] = None,
    scale: Optional[str] = "smoke",
    m: int = 30,
    max_iter: int = 400,
    batch: int = DEFAULT_THROUGHPUT_BATCH,
    rounds: int = 3,
    target_rrn: Optional[float] = None,
    spmv_format: str = "csr",
    basis_mode: str = "cached",
    backend: "str | None" = None,
) -> dict:
    """Run the full grid and return the schema-versioned document.

    The grid always runs serially: every cell is a wall-clock
    measurement, and concurrent cells would contend for cores and
    corrupt each other's numbers.

    The ``aggregate`` block is the headline: total solves over total
    wall seconds for both strategies, and their ratio — the document's
    ``aggregate.speedup`` is what the CI throughput-smoke gate checks.
    """
    if spmv_format not in SPMV_FORMATS:
        raise ValueError(
            f"unknown SpMV format {spmv_format!r}; "
            f"expected one of {SPMV_FORMATS}"
        )
    if basis_mode not in BASIS_MODES:
        raise ValueError(
            f"unknown basis_mode {basis_mode!r}; expected one of {BASIS_MODES}"
        )
    # resolved once so an unavailable-jit warning fires a single time
    backend = _dispatch.resolve_backend(backend)
    scale = resolve_scale(scale)
    matrices = list(matrices) if matrices else list(DEFAULT_THROUGHPUT_MATRICES)
    storages = list(storages) if storages else list(DEFAULT_THROUGHPUT_STORAGES)
    unknown = [name for name in matrices if name not in suite_names()]
    if unknown:
        raise KeyError(
            f"unknown matrices {unknown}; suite: {', '.join(suite_names())}"
        )
    entries = [
        run_throughput_entry(
            matrix, storage, scale=scale, m=m, max_iter=max_iter,
            batch=batch, rounds=rounds, target_rrn=target_rrn,
            spmv_format=spmv_format, basis_mode=basis_mode, backend=backend,
        )
        for matrix in matrices
        for storage in storages
    ]
    loop_total = sum(e["loop_wall_seconds"] for e in entries)
    batch_total = sum(e["batch_wall_seconds"] for e in entries)
    solves = sum(e["batch"] for e in entries)
    return {
        "schema": THROUGHPUT_SCHEMA,
        "schema_version": THROUGHPUT_SCHEMA_VERSION,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "scale": scale,
        "restart": int(m),
        "max_iter": int(max_iter),
        "batch": int(batch),
        "rounds": int(rounds),
        "spmv_format": str(spmv_format),
        "basis_mode": str(basis_mode),
        "matrices": matrices,
        "storages": storages,
        "entries": entries,
        "aggregate": {
            "solves": int(solves),
            "loop_wall_seconds": float(loop_total),
            "batch_wall_seconds": float(batch_total),
            "loop_solves_per_second": float(solves / loop_total),
            "batch_solves_per_second": float(solves / batch_total),
            "speedup": float(loop_total / batch_total),
        },
    }


# ----------------------------------------------------------------------
# schema validation + persistence
# ----------------------------------------------------------------------


def _expect(cond: bool, where: str, message: str) -> None:
    if not cond:
        raise ValueError(f"throughput schema violation at {where}: {message}")


def _expect_number(value: object, where: str) -> None:
    _expect(
        isinstance(value, (int, float)) and not isinstance(value, bool),
        where,
        f"expected a number, got {type(value).__name__}",
    )
    _expect(value == value and value not in (float("inf"), float("-inf")),
            where, "number must be finite")


def validate_throughput(doc: dict) -> None:
    """Validate a throughput document; raises ``ValueError`` naming the
    field."""
    _expect(isinstance(doc, dict), "$", "document must be an object")
    _expect(doc.get("schema") == THROUGHPUT_SCHEMA, "$.schema",
            f"expected {THROUGHPUT_SCHEMA!r}, got {doc.get('schema')!r}")
    _expect(doc.get("schema_version") == THROUGHPUT_SCHEMA_VERSION,
            "$.schema_version",
            f"expected {THROUGHPUT_SCHEMA_VERSION}, "
            f"got {doc.get('schema_version')!r}")
    for key in ("created", "scale", "spmv_format", "basis_mode"):
        _expect(isinstance(doc.get(key), str), f"$.{key}", "expected a string")
    _expect(doc["spmv_format"] in ("auto", "csr", "ell", "sell"),
            "$.spmv_format",
            f"expected one of auto/csr/ell/sell, got {doc['spmv_format']!r}")
    _expect(doc["basis_mode"] in BASIS_MODES, "$.basis_mode",
            f"expected one of {'/'.join(BASIS_MODES)}, "
            f"got {doc['basis_mode']!r}")
    for key in ("restart", "max_iter", "batch", "rounds"):
        _expect(isinstance(doc.get(key), int) and doc[key] > 0,
                f"$.{key}", "expected a positive integer")
    for key in ("matrices", "storages"):
        _expect(
            isinstance(doc.get(key), list) and doc[key]
            and all(isinstance(v, str) for v in doc[key]),
            f"$.{key}", "expected a non-empty list of strings",
        )
    entries = doc.get("entries")
    _expect(isinstance(entries, list) and entries, "$.entries",
            "expected a non-empty list")
    for i, entry in enumerate(entries):
        where = f"$.entries[{i}]"
        _expect(isinstance(entry, dict), where, "expected an object")
        for key, typ in _ENTRY_SCALARS.items():
            _expect(key in entry, f"{where}.{key}", "missing required field")
            if typ is float:
                _expect_number(entry[key], f"{where}.{key}")
            elif typ is int:
                _expect(
                    isinstance(entry[key], int)
                    and not isinstance(entry[key], bool),
                    f"{where}.{key}", "expected an integer",
                )
            elif typ is bool:
                _expect(isinstance(entry[key], bool), f"{where}.{key}",
                        "expected a boolean")
            else:
                _expect(isinstance(entry[key], str), f"{where}.{key}",
                        "expected a string")
        _expect(entry["bit_identical_b1"] is True,
                f"{where}.bit_identical_b1",
                "the B=1 identity gate must have passed")
        _expect(entry["bit_identical_batch"] is True,
                f"{where}.bit_identical_batch",
                "the batch-vs-loop identity gate must have passed")
        for key in ("iterations", "converged"):
            _expect(
                isinstance(entry.get(key), list)
                and len(entry[key]) == entry["batch"],
                f"{where}.{key}", "expected one element per batch column",
            )
        _expect(all(isinstance(v, int) and not isinstance(v, bool)
                    for v in entry["iterations"]),
                f"{where}.iterations", "expected integers")
        _expect(all(isinstance(v, bool) for v in entry["converged"]),
                f"{where}.converged", "expected booleans")
        for key in ("loop_wall_seconds", "batch_wall_seconds"):
            _expect(entry[key] > 0, f"{where}.{key}", "must be positive")
    aggregate = doc.get("aggregate")
    _expect(isinstance(aggregate, dict), "$.aggregate", "expected an object")
    _expect(
        set(aggregate) == {"solves", "loop_wall_seconds",
                           "batch_wall_seconds", "loop_solves_per_second",
                           "batch_solves_per_second", "speedup"},
        "$.aggregate", f"unexpected aggregate keys {sorted(aggregate)}",
    )
    _expect(
        isinstance(aggregate["solves"], int)
        and not isinstance(aggregate["solves"], bool)
        and aggregate["solves"] > 0,
        "$.aggregate.solves", "expected a positive integer",
    )
    for key in ("loop_wall_seconds", "batch_wall_seconds",
                "loop_solves_per_second", "batch_solves_per_second",
                "speedup"):
        _expect_number(aggregate[key], f"$.aggregate.{key}")
        _expect(aggregate[key] > 0, f"$.aggregate.{key}", "must be positive")


def write_throughput(doc: dict, path: str) -> None:
    """Validate then write a throughput document as pretty-printed JSON."""
    validate_throughput(doc)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=False)
        fh.write("\n")


def load_throughput(path: str) -> dict:
    """Read and validate a throughput document."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    validate_throughput(doc)
    return doc
