"""Plain-text rendering of tables, series and histograms.

Every benchmark regenerates a paper table or figure; since the harness
is terminal-based, figures are rendered as aligned numeric series and
text histograms.  All functions return the formatted string (callers
decide where it goes) — the benchmark conftest routes them to the
pytest terminal summary and to ``benchmarks/results/``.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

__all__ = ["format_table", "format_series", "format_histogram"]


def _fmt_cell(v) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if math.isnan(v):
            return "-"
        a = abs(v)
        if a >= 1e5 or a < 1e-3:
            return f"{v:.2e}"
        return f"{v:.4g}"
    return str(v)


def format_table(title: str, headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Aligned ASCII table with a title rule."""
    cells = [[_fmt_cell(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = [f"== {title} =="]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    title: str,
    x_label: str,
    series: Dict[str, List[Tuple[float, float]]],
    max_points: int = 40,
) -> str:
    """Render named (x, y) series as a merged table, downsampling long
    series evenly so convergence histories stay readable."""
    xs = sorted({x for pts in series.values() for x, _ in pts})
    if len(xs) > max_points:
        idx = [int(i * (len(xs) - 1) / (max_points - 1)) for i in range(max_points)]
        xs = [xs[i] for i in sorted(set(idx))]
    headers = [x_label] + list(series)
    lookup = {name: dict(pts) for name, pts in series.items()}
    rows = []
    for x in xs:
        row = [x]
        for name in series:
            row.append(lookup[name].get(x, float("nan")))
        rows.append(row)
    return format_table(title, headers, rows)


def format_histogram(
    title: str,
    bin_labels: Sequence,
    counts: Sequence[float],
    width: int = 50,
) -> str:
    """Text bar chart (used for the Fig. 2 / Fig. 10 histograms)."""
    peak = max(counts) if len(counts) else 1
    lines = [f"== {title} =="]
    lwidth = max((len(_fmt_cell(b)) for b in bin_labels), default=1)
    for label, count in zip(bin_labels, counts):
        bar = "#" * (int(count / peak * width) if peak else 0)
        lines.append(f"{_fmt_cell(label).rjust(lwidth)} | {bar} {int(count)}")
    return "\n".join(lines)
