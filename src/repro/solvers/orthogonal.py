"""Orthogonalization for the Arnoldi process (Fig. 1 steps 4-11).

Classical Gram-Schmidt against the (lossy) stored basis with the
conditional re-orthogonalization of the paper's Fig. 1: after the first
pass, if the remaining norm ``h_{j+1,j}`` dropped below ``eta`` times the
pre-orthogonalization norm, a second pass runs and its coefficients are
accumulated into ``h`` (steps 7-10).  Modified Gram-Schmidt is provided
as an alternative for comparison studies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .basis import KrylovBasis

__all__ = ["OrthogonalizationResult", "cgs_orthogonalize", "mgs_orthogonalize", "DEFAULT_ETA"]

#: re-orthogonalization threshold; 1/sqrt(2) is the usual DGKS-style choice
DEFAULT_ETA = 2.0 ** -0.5


@dataclass
class OrthogonalizationResult:
    """Output of one Arnoldi orthogonalization step."""

    #: h_{1:j,j} — projection coefficients onto the stored basis
    h: np.ndarray
    #: h_{j+1,j} — the norm of the orthogonalized vector
    h_next: float
    #: the orthogonalized (not yet normalized) vector
    w: np.ndarray
    #: whether the conditional second pass ran
    reorthogonalized: bool
    #: breakdown: w vanished against the basis (Fig. 1 step 12)
    breakdown: bool
    #: a NaN/Inf contaminated the coefficients (corrupted basis or w)
    nonfinite: bool = False
    #: the re-orthogonalization pass failed the eta test again ("twice is
    #: enough"): the new direction is numerically inside the stored span,
    #: i.e. the lossy basis has lost orthogonality beyond repair
    loss_of_orthogonality: bool = False


def _finish(
    h: np.ndarray,
    h_next: float,
    w: np.ndarray,
    w_tilde: float,
    reorth: bool,
    h_first: float,
    eta: float,
) -> OrthogonalizationResult:
    """Classify the step outcome shared by the CGS and MGS paths."""
    nonfinite = not (np.isfinite(h_next) and bool(np.all(np.isfinite(h))))
    breakdown = (not nonfinite) and (
        h_next == 0.0 or h_next < eta * np.finfo(np.float64).eps * w_tilde
    )
    loss = (
        not nonfinite
        and not breakdown
        and reorth
        and h_next < eta * h_first
    )
    return OrthogonalizationResult(
        h=h,
        h_next=h_next,
        w=w,
        reorthogonalized=reorth,
        breakdown=breakdown,
        nonfinite=nonfinite,
        loss_of_orthogonality=loss,
    )


def cgs_orthogonalize(
    basis: KrylovBasis, j: int, w: np.ndarray, eta: float = DEFAULT_ETA
) -> OrthogonalizationResult:
    """Classical Gram-Schmidt with conditional re-orthogonalization."""
    w = np.array(w, dtype=np.float64)
    w_tilde = float(np.linalg.norm(w))  # omega-tilde of Fig. 1 step 3
    h = basis.dot_basis(j, w)
    basis.axpy(j, h, w)  # w -= V_j h, fused with the basis decode
    h_next = float(np.linalg.norm(w))
    h_first = h_next
    reorth = False
    if h_next < eta * w_tilde:
        reorth = True
        u = basis.dot_basis(j, w)
        basis.axpy(j, u, w)
        h = h + u
        h_next = float(np.linalg.norm(w))
    return _finish(h, h_next, w, w_tilde, reorth, h_first, eta)


def mgs_orthogonalize(
    basis: KrylovBasis, j: int, w: np.ndarray, eta: float = DEFAULT_ETA
) -> OrthogonalizationResult:
    """Modified Gram-Schmidt (one vector at a time), same interface.

    MGS reads the basis vector-by-vector (j synchronization points on a
    GPU), which is why Ginkgo's CB-GMRES prefers CGS + conditional
    re-orthogonalization; provided for numerical comparisons.
    """
    w = np.array(w, dtype=np.float64)
    w_tilde = float(np.linalg.norm(w))
    h = np.zeros(j)
    for i in range(j):
        # read_vector, not vector(): each MGS pass streams every stored
        # vector from (simulated) memory, and that traffic must reach
        # the timing model
        vi = basis.read_vector(i)
        h[i] = float(vi @ w)
        w -= h[i] * vi
    h_next = float(np.linalg.norm(w))
    h_first = h_next
    reorth = False
    if h_next < eta * w_tilde:
        reorth = True
        for i in range(j):
            vi = basis.read_vector(i)
            u = float(vi @ w)
            w -= u * vi
            h[i] += u
        h_next = float(np.linalg.norm(w))
    return _finish(h, h_next, w, w_tilde, reorth, h_first, eta)
