"""Krylov-basis storage through the Accessor interface.

The basis ``V_{m+1}`` is the data structure CB-GMRES compresses: every
new vector is written (compressed) once and read (decompressed) by every
later orthogonalization and by the solution update — the highlighted
sections of the paper's Fig. 1.

Two basis modes reproduce the two kernel structures the paper compares:

``cached``
    Keeps a dense float64 view of the decompressed vectors (the
    "materialized" structure a naive CPU port would use).  Fast in
    NumPy, but the float64 working set is ``O(n x (m+1))`` regardless of
    the storage format.
``streaming``
    Never materializes the basis: the fused kernels of
    :mod:`repro.fused` decode one tile of compressed blocks across all
    ``j`` vectors at a time, so the float64 working set is ``O(tile)`` —
    the paper's in-register fusion argument, and the CB-GMRES memory
    argument of Aliaga et al.

Both modes run ``V^T w`` / ``V y`` through the *same* fused tile kernels
(cached feeds tiles from the dense view, streaming decodes them), which
pins the accumulation order and makes the two modes bit-identical —
asserted across storages in the test suite.  The traffic a GPU would
move is accounted analytically by the timing model from the iteration
log (:class:`repro.solvers.gmres.SolveStats`), not from the cache.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from ..accessor import VectorAccessor, make_accessor
from ..jit import dispatch as _dispatch
from ..fused import (
    DEFAULT_TILE_ELEMS,
    CachedTileReader,
    FusedOpLog,
    StreamingTileReader,
    axpy_fused,
    combine_fused,
    dot_basis_fused,
    norm_fused,
)
from ..observe import NULL_TRACER

__all__ = ["KrylovBasis", "BASIS_MODES", "write_basis_vectors_batch"]

#: supported basis modes (``--basis-mode`` on the CLI)
BASIS_MODES = ("cached", "streaming")


class KrylovBasis:
    """``m+1`` Krylov vectors of length ``n`` in a reduced storage format.

    Parameters
    ----------
    n, m:
        Vector length and restart length (slots ``0..m``).
    storage:
        Storage-format name (see :func:`repro.accessor.make_accessor`).
    accessor_factory:
        Override the per-slot accessor construction with a fixed-format
        ``factory(n)``.  Incompatible with :meth:`set_storage` (the
        factory cannot express a format change) — adaptive callers pass
        ``storage_factory`` instead.
    storage_factory:
        Format-aware accessor construction ``factory(storage, n)``,
        used for the initial build *and* every later
        :meth:`set_storage` — the hook fault injectors use to keep
        wrapping accessors across adaptive format switches.
    tracer:
        Optional observe-layer tracer.
    basis_mode:
        ``"cached"`` (dense decompressed view, the default) or
        ``"streaming"`` (tile-streamed fused kernels, ``O(tile)``
        float64 working set).  Bit-identical to each other.
    tile_elems:
        Fused-kernel tile size in elements; rounded up to the storage
        format's decode granularity (FRSZ2: the block size ``BS``).
    backend:
        Kernel backend (``"numpy"``/``"jit"``) forwarded to the default
        accessor construction — and, because :meth:`set_storage` reuses
        the same construction hook, preserved across adaptive format
        switches.  Custom ``accessor_factory``/``storage_factory``
        callables own their accessor construction and are expected to
        close over a backend themselves.
    """

    def __init__(
        self,
        n: int,
        m: int,
        storage: str = "float64",
        accessor_factory: "Callable[[int], VectorAccessor] | None" = None,
        tracer=None,
        basis_mode: str = "cached",
        tile_elems: int = DEFAULT_TILE_ELEMS,
        storage_factory: "Callable[[str, int], VectorAccessor] | None" = None,
        backend: "str | None" = None,
    ) -> None:
        if m < 1:
            raise ValueError("restart length m must be positive")
        if basis_mode not in BASIS_MODES:
            raise ValueError(
                f"unknown basis_mode {basis_mode!r}; expected one of {BASIS_MODES}"
            )
        if tile_elems < 1:
            raise ValueError("tile_elems must be positive")
        if accessor_factory is not None and storage_factory is not None:
            raise ValueError(
                "pass accessor_factory (fixed format) or storage_factory "
                "(format-aware), not both"
            )
        self.n = int(n)
        self.m = int(m)
        self.storage = storage
        self.basis_mode = basis_mode
        self.tracer = tracer or NULL_TRACER
        self._storage_factory = storage_factory
        self.backend = _dispatch.resolve_backend(backend)
        if accessor_factory is not None:
            self._make: "Callable[[str, int], VectorAccessor] | None" = None
            factory = accessor_factory
        else:
            if storage_factory is not None:
                self._make = storage_factory
            else:
                resolved = self.backend

                def _make_default(fmt: str, size: int) -> VectorAccessor:
                    return make_accessor(fmt, size, backend=resolved)

                # set_storage rebuilds through this same hook, so the
                # backend stays pinned across adaptive format switches
                self._make = _make_default
            make = self._make

            def factory(size: int) -> VectorAccessor:
                return make(storage, size)

        self.accessors: List[VectorAccessor] = [factory(n) for _ in range(m + 1)]
        #: per-slot storage-format names (uniform until :meth:`set_storage`
        #: is called with explicit ``slots``)
        self.slot_storages: List[str] = [storage] * (m + 1)
        if self.tracer.enabled:
            for acc in self.accessors:
                acc.set_tracer(self.tracer)
        # Tile boundaries must land on whole storage blocks or a
        # streaming decode could not serve them independently; the same
        # (rounded) grid is used by the cached mode so both modes share
        # one accumulation order.
        gran = max(
            int(getattr(acc, "tile_granularity", 1)) for acc in self.accessors
        )
        self.tile_elems = max(gran, ((int(tile_elems) + gran - 1) // gran) * gran)
        #: fused-kernel work log (tiles, values, peak scratch bytes)
        self.fused_log = FusedOpLog()
        # decompressed view of every written vector (column j = V[:, j]);
        # streaming mode drops it entirely — that is the point
        self._cache: Optional[np.ndarray] = (
            np.zeros((n, m + 1), order="F") if basis_mode == "cached" else None
        )
        self._written = 0

    @property
    def bits_per_value(self) -> float:
        """Stored bits per basis value (storage-format footprint)."""
        return self.accessors[0].bits_per_value

    @property
    def stored_vector_nbytes(self) -> int:
        """Simulated device bytes of one stored basis vector."""
        return self.accessors[0].stored_nbytes()

    @property
    def peak_float64_bytes(self) -> int:
        """Largest float64 working set this basis has held.

        ``cached``: the dense ``(n, m+1)`` view, allocated up front.
        ``streaming``: the biggest fused-kernel scratch tile so far —
        ``O(tile x j)`` instead of ``O(n x m)``.
        """
        if self._cache is not None:
            return int(self._cache.nbytes)
        return int(self.fused_log.peak_scratch_bytes)

    def set_storage(self, storage: str, slots: "Optional[List[int]]" = None) -> None:
        """Switch slot(s) to a new storage format.

        The adaptive-precision hook: :class:`~repro.solvers.adaptive.
        PrecisionController` calls this at restart boundaries so each
        restart cycle's basis lives in the format the controller chose;
        per-vector adaptation passes explicit ``slots``.

        Parameters
        ----------
        storage : str
            New storage-format name.
        slots : list of int, optional
            Slot indices to rebuild; default is every slot (and updates
            :attr:`storage`, the basis-wide label).  Mixed-format bases
            are fully supported by both basis modes: the fused tile
            readers fall back to per-accessor tile decodes when slots
            disagree.

        Raises
        ------
        ValueError
            If the basis was built with a fixed-format
            ``accessor_factory`` (the factory cannot express the
            change), or if the new format's decode granularity does not
            divide the established tile grid (the grid is part of the
            determinism contract and never moves after construction).

        Notes
        -----
        Rebuilt slots come back *empty* (their stored payload and the
        cached view column are dropped), so switches belong at restart
        boundaries — exactly where the controller sits — or on slots
        not yet written this cycle.
        """
        if self._make is None:
            raise ValueError(
                "this basis was built with a fixed-format accessor_factory; "
                "pass storage_factory=... to enable set_storage"
            )
        targets = list(range(self.m + 1)) if slots is None else list(slots)
        for j in targets:
            if not 0 <= j <= self.m:
                raise IndexError(f"basis slot {j} out of range [0, {self.m}]")
        fresh = [self._make(storage, self.n) for _ in targets]
        for acc in fresh:
            gran = int(getattr(acc, "tile_granularity", 1))
            if self.tile_elems % gran:
                raise ValueError(
                    f"storage {storage!r} decodes in blocks of {gran}, which "
                    f"does not divide the established tile grid "
                    f"({self.tile_elems} elems)"
                )
            if self.tracer.enabled:
                acc.set_tracer(self.tracer)
        for j, acc in zip(targets, fresh):
            self.accessors[j] = acc
            self.slot_storages[j] = storage
            if self._cache is not None:
                self._cache[:, j] = 0.0
        if slots is None:
            self.storage = storage

    @property
    def uniform_storage(self) -> bool:
        """True while every slot shares one storage format."""
        first = self.slot_storages[0]
        return all(s == first for s in self.slot_storages)

    def write_vector(self, j: int, v: np.ndarray) -> None:
        """Compress ``v`` into slot ``j`` (and refresh the cached view)."""
        if not 0 <= j <= self.m:
            raise IndexError(f"basis slot {j} out of range [0, {self.m}]")
        acc = self.accessors[j]
        with self.tracer.span("basis_write", slot=j):
            acc.write(v)
            if self._cache is not None:
                # refreshing the lossy view decompresses the vector we
                # just wrote (one bulk decode straight into the column;
                # it is part of the write, not a stored-basis read)
                acc.read_into(self._cache[:, j])
        self._written = max(self._written, j + 1)

    def vector(self, j: int) -> np.ndarray:
        """The decompressed basis vector ``v_j`` (lossy).

        Cached mode returns the dense view's column; streaming mode
        decompresses on demand (bit-identical — decoding is
        deterministic).  Uncounted; use :meth:`read_vector` on solver
        hot paths so the traffic reaches the timing model.
        """
        if j >= self._written:
            raise IndexError(f"basis slot {j} has not been written")
        if self._cache is not None:
            return self._cache[:, j]
        return self.accessors[j].read()

    def read_vector(self, j: int) -> np.ndarray:
        """``v_j`` as a *counted* stored-basis read.

        Tallies one vector read (``basis.vector_reads`` /
        ``basis.bytes_read``) exactly like :meth:`dot_basis` does per
        vector — the accounting route for vector-at-a-time consumers
        such as MGS, whose traffic was previously invisible to the
        timing model.
        """
        with self.tracer.span("basis_read", vectors=1):
            if self.tracer.enabled:
                self.tracer.count("basis.vector_reads", 1)
                self.tracer.count("basis.bytes_read", self.stored_vector_nbytes)
            return self.vector(j)

    def matrix(self, j: int) -> np.ndarray:
        """The decompressed leading basis ``V_j`` as an ``(n, j)`` array.

        A diagnostic escape hatch (orthogonality monitors, tests): in
        streaming mode this *materializes* the basis on demand — it is
        never called on the solver hot path.
        """
        if j > self._written:
            raise IndexError(f"only {self._written} basis vectors written")
        if self._cache is not None:
            return self._cache[:, :j]
        out = np.empty((self.n, j), order="F")
        for i in range(j):
            out[:, i] = self.accessors[i].read()
        return out

    def _reader(self, j: int):
        """The fused-kernel tile source for the leading ``j`` vectors."""
        if j > self._written:
            raise IndexError(f"only {self._written} basis vectors written")
        if self._cache is not None:
            return CachedTileReader(self._cache, j)
        return StreamingTileReader(self.accessors, j)

    def dot_basis(self, j: int, w: np.ndarray) -> np.ndarray:
        """``V_j^T w`` — the orthogonalization read of Fig. 1 step 4."""
        with self.tracer.span("basis_read", vectors=j):
            self._count_read(j)
            return dot_basis_fused(
                self._reader(j), w, self.tile_elems, self.tracer, self.fused_log
            )

    def combine(self, j: int, y: np.ndarray) -> np.ndarray:
        """``V_j y`` — the solution-update read of Fig. 1 step 18."""
        with self.tracer.span("basis_read", vectors=j):
            self._count_read(j)
            return combine_fused(
                self._reader(j), y, self.tile_elems, self.tracer, self.fused_log
            )

    def axpy(self, j: int, y: np.ndarray, w: np.ndarray) -> np.ndarray:
        """``w -= V_j y`` in place, fused with the basis decode.

        Element-for-element identical to ``w -= self.combine(j, y)``
        but without materializing the ``(n,)`` product (the fused-update
        structure of the paper's kernels).
        """
        with self.tracer.span("basis_read", vectors=j):
            self._count_read(j)
            return axpy_fused(
                self._reader(j), y, w, self.tile_elems, self.tracer, self.fused_log
            )

    def norm_vector(self, j: int) -> float:
        """2-norm of stored vector ``v_j``, streamed tile-by-tile."""
        if j >= self._written:
            raise IndexError(f"basis slot {j} has not been written")
        if self._cache is not None:
            col = self._cache[:, j]

            def segments(t0: int, t1: int) -> np.ndarray:
                return col[t0:t1]

        else:
            acc = self.accessors[j]

            def segments(t0: int, t1: int) -> np.ndarray:
                return acc.read_tile(t0, t1)

        return norm_fused(
            segments, self.n, self.tile_elems, self.tracer, self.fused_log
        )

    def _count_read(self, j: int) -> None:
        """Tally the stored bytes a GPU kernel would stream for ``V_j``."""
        if self.tracer.enabled and j > 0:
            self.tracer.count("basis.vector_reads", j)
            if self.uniform_storage:
                nbytes = j * self.stored_vector_nbytes
            else:  # mixed-format basis: bill each slot at its own width
                nbytes = sum(
                    acc.stored_nbytes() for acc in self.accessors[:j]
                )
            self.tracer.count("basis.bytes_read", nbytes)

    def reset(self) -> None:
        """Forget all vectors (used at restart).

        Clears the dense view *and* the accessor payloads (compressed
        streams, decoded-block caches), so neither basis mode can
        observe pre-restart bits through any access path.
        """
        self._written = 0
        if self._cache is not None:
            self._cache[:] = 0.0
        for acc in self.accessors:
            try:
                acc.clear()
            except NotImplementedError:
                # third-party accessors without clear(): the _written
                # guard alone fences their stale payloads
                pass


def write_basis_vectors_batch(
    bases: "List[KrylovBasis]", j: int, vectors: "List[np.ndarray]"
) -> bool:
    """Write ``vectors[i]`` into ``bases[i]`` slot ``j`` in one encode.

    The batched-solve counterpart of :meth:`KrylovBasis.write_vector`:
    when every target accessor is a plain FRSZ2 accessor with matching
    codec parameters, all vectors compress in a single
    :meth:`~repro.core.frsz2.FRSZ2.compress_batch` pass
    (:func:`repro.accessor.frsz2_accessor.write_frsz2_batch`), then each
    basis refreshes its cached view and write accounting exactly as a
    per-basis ``write_vector`` loop would — the bitwise-identical
    fallback this fast path is exchangeable with.

    Returns
    -------
    bool
        ``True`` if the batched encode ran and every basis is updated.
        ``False`` when ineligible (fewer than two bases, shape mismatch,
        a non-finite vector, wrapped accessors, codec mismatch, or a
        storage rejection): **no basis is mutated** and the caller must
        fall back to per-basis ``write_vector`` so per-column write
        failures surface on the right column.
    """
    from ..accessor.frsz2_accessor import write_frsz2_batch

    if len(bases) < 2 or len(bases) != len(vectors):
        return False
    n = bases[0].n
    if any(b.n != n for b in bases):
        return False
    V = np.empty((n, len(bases)), order="F")
    for i, v in enumerate(vectors):
        v = np.asarray(v)
        if v.shape != (n,):
            return False
        V[:, i] = v
    if not np.all(np.isfinite(V)):
        # a solo write of a non-finite vector raises on that column only
        return False
    accessors = [b.accessors[j] for b in bases]
    try:
        if not write_frsz2_batch(accessors, V):
            return False
    except (ValueError, OverflowError):
        # all-or-nothing: the batch is encoded before any store, so a
        # rejection leaves every accessor untouched
        return False
    # refresh the lossy cached views in one batched decode (the values
    # are bit-identical to per-accessor read_into: decoding is an
    # elementwise function of the container just stored)
    cached = [(b, acc) for b, acc in zip(bases, accessors)
              if b._cache is not None]
    if cached:
        codec = cached[0][1].codec
        decoded = codec.decompress_batch(
            [acc._compressed for _, acc in cached]
        )
        for (b, acc), values in zip(cached, decoded):
            with b.tracer.span("basis_write", slot=j):
                acc._record_read()
                b._cache[:, j] = values
    for b in bases:
        b._written = max(b._written, j + 1)
    return True
