"""Krylov-basis storage through the Accessor interface.

The basis ``V_{m+1}`` is the data structure CB-GMRES compresses: every
new vector is written (compressed) once and read (decompressed) by every
later orthogonalization and by the solution update — the highlighted
sections of the paper's Fig. 1.

Decompression is deterministic, so the basis keeps a float64 cache of
the *decompressed* vectors: numerically identical to decompress-on-read,
but the Python solver then runs on dense BLAS-2 operations.  The traffic
a GPU would move is accounted analytically by the timing model from the
iteration log (:class:`repro.solvers.gmres.SolveStats`), not from this
cache.
"""

from __future__ import annotations

from typing import Callable, List

import numpy as np

from ..accessor import VectorAccessor, make_accessor
from ..observe import NULL_TRACER

__all__ = ["KrylovBasis"]


class KrylovBasis:
    """``m+1`` Krylov vectors of length ``n`` in a reduced storage format."""

    def __init__(
        self,
        n: int,
        m: int,
        storage: str = "float64",
        accessor_factory: "Callable[[int], VectorAccessor] | None" = None,
        tracer=None,
    ) -> None:
        if m < 1:
            raise ValueError("restart length m must be positive")
        self.n = int(n)
        self.m = int(m)
        self.storage = storage
        self.tracer = tracer or NULL_TRACER
        factory = accessor_factory or (lambda size: make_accessor(storage, size))
        self.accessors: List[VectorAccessor] = [factory(n) for _ in range(m + 1)]
        if self.tracer.enabled:
            for acc in self.accessors:
                acc.set_tracer(self.tracer)
        # decompressed view of every written vector (column j = V[:, j])
        self._cache = np.zeros((n, m + 1), order="F")
        self._written = 0

    @property
    def bits_per_value(self) -> float:
        """Stored bits per basis value (storage-format footprint)."""
        return self.accessors[0].bits_per_value

    @property
    def stored_vector_nbytes(self) -> int:
        """Simulated device bytes of one stored basis vector."""
        return self.accessors[0].stored_nbytes()

    def write_vector(self, j: int, v: np.ndarray) -> None:
        """Compress ``v`` into slot ``j`` and refresh the decompressed view."""
        if not 0 <= j <= self.m:
            raise IndexError(f"basis slot {j} out of range [0, {self.m}]")
        acc = self.accessors[j]
        with self.tracer.span("basis_write", slot=j):
            acc.write(v)
            # refreshing the lossy cache decompresses the vector we just
            # wrote; it is part of the write, not a stored-basis read
            self._cache[:, j] = acc.read()
        self._written = max(self._written, j + 1)

    def vector(self, j: int) -> np.ndarray:
        """The decompressed basis vector ``v_j`` (lossy, read-only view)."""
        if j >= self._written:
            raise IndexError(f"basis slot {j} has not been written")
        return self._cache[:, j]

    def matrix(self, j: int) -> np.ndarray:
        """The decompressed leading basis ``V_j`` as an (n, j) view."""
        if j > self._written:
            raise IndexError(f"only {self._written} basis vectors written")
        return self._cache[:, :j]

    def dot_basis(self, j: int, w: np.ndarray) -> np.ndarray:
        """``V_j^T w`` — the orthogonalization read of Fig. 1 step 4."""
        with self.tracer.span("basis_read", vectors=j):
            self._count_read(j)
            return self.matrix(j).T @ w

    def combine(self, j: int, y: np.ndarray) -> np.ndarray:
        """``V_j y`` — the solution-update read of Fig. 1 step 18."""
        with self.tracer.span("basis_read", vectors=j):
            self._count_read(j)
            return self.matrix(j) @ y

    def _count_read(self, j: int) -> None:
        """Tally the stored bytes a GPU kernel would stream for ``V_j``."""
        if self.tracer.enabled and j > 0:
            self.tracer.count("basis.vector_reads", j)
            self.tracer.count("basis.bytes_read", j * self.stored_vector_nbytes)

    def reset(self) -> None:
        """Forget all vectors (used at restart)."""
        self._written = 0
