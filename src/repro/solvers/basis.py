"""Krylov-basis storage through the Accessor interface.

The basis ``V_{m+1}`` is the data structure CB-GMRES compresses: every
new vector is written (compressed) once and read (decompressed) by every
later orthogonalization and by the solution update — the highlighted
sections of the paper's Fig. 1.

Decompression is deterministic, so the basis keeps a float64 cache of
the *decompressed* vectors: numerically identical to decompress-on-read,
but the Python solver then runs on dense BLAS-2 operations.  The traffic
a GPU would move is accounted analytically by the timing model from the
iteration log (:class:`repro.solvers.gmres.SolveStats`), not from this
cache.
"""

from __future__ import annotations

from typing import Callable, List

import numpy as np

from ..accessor import VectorAccessor, make_accessor

__all__ = ["KrylovBasis"]


class KrylovBasis:
    """``m+1`` Krylov vectors of length ``n`` in a reduced storage format."""

    def __init__(
        self,
        n: int,
        m: int,
        storage: str = "float64",
        accessor_factory: "Callable[[int], VectorAccessor] | None" = None,
    ) -> None:
        if m < 1:
            raise ValueError("restart length m must be positive")
        self.n = int(n)
        self.m = int(m)
        self.storage = storage
        factory = accessor_factory or (lambda size: make_accessor(storage, size))
        self.accessors: List[VectorAccessor] = [factory(n) for _ in range(m + 1)]
        # decompressed view of every written vector (column j = V[:, j])
        self._cache = np.zeros((n, m + 1), order="F")
        self._written = 0

    @property
    def bits_per_value(self) -> float:
        """Stored bits per basis value (storage-format footprint)."""
        return self.accessors[0].bits_per_value

    @property
    def stored_vector_nbytes(self) -> int:
        """Simulated device bytes of one stored basis vector."""
        return self.accessors[0].stored_nbytes()

    def write_vector(self, j: int, v: np.ndarray) -> None:
        """Compress ``v`` into slot ``j`` and refresh the decompressed view."""
        if not 0 <= j <= self.m:
            raise IndexError(f"basis slot {j} out of range [0, {self.m}]")
        acc = self.accessors[j]
        acc.write(v)
        self._cache[:, j] = acc.read()
        self._written = max(self._written, j + 1)

    def vector(self, j: int) -> np.ndarray:
        """The decompressed basis vector ``v_j`` (lossy, read-only view)."""
        if j >= self._written:
            raise IndexError(f"basis slot {j} has not been written")
        return self._cache[:, j]

    def matrix(self, j: int) -> np.ndarray:
        """The decompressed leading basis ``V_j`` as an (n, j) view."""
        if j > self._written:
            raise IndexError(f"only {self._written} basis vectors written")
        return self._cache[:, :j]

    def dot_basis(self, j: int, w: np.ndarray) -> np.ndarray:
        """``V_j^T w`` — the orthogonalization read of Fig. 1 step 4."""
        return self.matrix(j).T @ w

    def combine(self, j: int, y: np.ndarray) -> np.ndarray:
        """``V_j y`` — the solution-update read of Fig. 1 step 18."""
        return self.matrix(j) @ y

    def reset(self) -> None:
        """Forget all vectors (used at restart)."""
        self._written = 0
