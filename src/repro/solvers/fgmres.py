"""Flexible GMRES with a compressed preconditioned basis (paper ref [17]).

Agullo et al. ("Exploring variable accuracy storage through lossy
compression ... a first application to flexible GMRES") proposed —
almost simultaneously with CB-GMRES — compressing the *preconditioned*
Krylov vectors ``z_j = M^-1 v_j`` inside flexible GMRES instead of the
orthonormal basis itself.  The paper's related-work section summarizes
the trade-off: "This improves the numerical stability at the price of
reduced runtime benefits."

Both effects are structural and this implementation reproduces them:

* stability — the orthonormal basis ``V`` stays in full precision, so
  the Arnoldi recurrence is undisturbed; compression errors only enter
  through the solution update ``x = x0 + Z_m y``, where they act like a
  slightly perturbed preconditioner (which flexible GMRES tolerates by
  construction);
* runtime — *two* bases are stored and streamed (``V`` uncompressed for
  orthogonalization + ``Z`` compressed), so the memory-traffic savings
  are roughly halved relative to CB-GMRES.

The work log feeds the same GPU timing model; the
``uncompressed_basis_reads`` counter carries the V-basis traffic that
CB-GMRES would have compressed.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from ..accessor import VectorAccessor
from ..jit import dispatch as _dispatch
from ..sparse.csr import CSRMatrix
from ..fused import DEFAULT_TILE_ELEMS
from .adaptive import (
    ADAPTIVE_STORAGE,
    ControllerConfig,
    CycleFeedback,
    PrecisionController,
)
from .basis import KrylovBasis
from .gmres import (
    DEFAULT_MAX_ITER,
    DEFAULT_RESTART,
    GmresResult,
    ResidualSample,
    SolveStats,
)
from .hessenberg import GivensLeastSquares
from .orthogonal import DEFAULT_ETA, cgs_orthogonalize
from .preconditioner import IdentityPreconditioner, Preconditioner

__all__ = ["FlexibleGmres"]


class FlexibleGmres:
    """Restarted FGMRES storing the preconditioned basis ``Z`` compressed.

    Parameters mirror :class:`~repro.solvers.gmres.CbGmres`;
    ``z_storage`` is the storage format of the preconditioned vectors
    (the quantity ref [17] compresses), while the orthonormal basis ``V``
    always stays in float64.

    ``z_storage="adaptive"`` puts the Z basis under a
    :class:`~repro.solvers.adaptive.PrecisionController`: each restart
    cycle re-selects the cheapest ladder format whose unit roundoff
    still admits the residual reduction the cycle must deliver.  The
    orthonormal V basis is untouched (it is already float64), so only
    the solution-update error channel moves — exactly the channel
    flexible GMRES tolerates by construction.

    Parameters
    ----------
    a : CSRMatrix
        Square system matrix.
    z_storage : str, optional
        Storage format for the preconditioned basis, or ``"adaptive"``.
    m : int, optional
        Restart length.
    eta : float, optional
        CGS reorthogonalization threshold.
    max_iter : int, optional
        Global iteration cap.
    stall_restarts : int, optional
        Consecutive non-improving restarts before declaring a stall.
    preconditioner : Preconditioner, optional
        ``M`` in ``z = M^-1 v`` (identity when omitted).
    accessor_factory : callable, optional
        ``n -> VectorAccessor`` override for the Z basis (fixed formats
        only; incompatible with ``z_storage="adaptive"``).
    storage_factory : callable, optional
        ``(storage, n) -> VectorAccessor`` override used for adaptive
        solves, where the controller rebuilds accessors per format
        switch.  Mutually exclusive with ``accessor_factory``.
    precision : ControllerConfig, optional
        Controller tuning for ``z_storage="adaptive"``.
    basis_mode : str, optional
        ``"cached"`` or ``"streaming"`` for both bases.
    tile_elems : int, optional
        Tile size override for the shared tile grid.
    backend : str, optional
        Kernel backend (``"numpy"``/``"jit"``) for the SpMV and the Z
        basis codec; bit-identical across backends (see
        :mod:`repro.jit.dispatch`).
    """

    def __init__(
        self,
        a: CSRMatrix,
        z_storage: str = "frsz2_32",
        m: int = DEFAULT_RESTART,
        eta: float = DEFAULT_ETA,
        max_iter: int = DEFAULT_MAX_ITER,
        stall_restarts: Optional[int] = 8,
        preconditioner: Optional[Preconditioner] = None,
        accessor_factory: "Callable[[int], VectorAccessor] | None" = None,
        storage_factory: "Callable[[str, int], VectorAccessor] | None" = None,
        precision: Optional[ControllerConfig] = None,
        basis_mode: str = "cached",
        tile_elems: Optional[int] = None,
        backend: "str | None" = None,
    ) -> None:
        if a.shape[0] != a.shape[1]:
            raise ValueError("FGMRES requires a square matrix")
        if m < 1:
            raise ValueError("restart length must be positive")
        if accessor_factory is not None and storage_factory is not None:
            raise ValueError(
                "accessor_factory and storage_factory are mutually exclusive"
            )
        if z_storage == ADAPTIVE_STORAGE and accessor_factory is not None:
            raise ValueError(
                "adaptive z_storage rebuilds accessors per format switch; "
                "pass storage_factory instead of accessor_factory"
            )
        self.backend = _dispatch.resolve_backend(backend)
        if backend is not None and hasattr(a, "set_backend"):
            a.set_backend(self.backend)
        self.a = a
        self.z_storage = z_storage
        self.m = int(m)
        self.eta = float(eta)
        self.max_iter = int(max_iter)
        self.stall_restarts = stall_restarts
        self.preconditioner = preconditioner or IdentityPreconditioner()
        self._factory = accessor_factory
        self._storage_factory = storage_factory
        self.precision = precision
        self.basis_mode = basis_mode
        self.tile_elems = tile_elems

    def solve(
        self,
        b: np.ndarray,
        target_rrn: float,
        x0: Optional[np.ndarray] = None,
        record_history: bool = True,
    ) -> GmresResult:
        """Solve ``A x = b`` to the target relative residual norm."""
        a = self.a
        n = a.shape[0]
        prec = self.preconditioner
        b = np.asarray(b, dtype=np.float64)
        if b.shape != (n,):
            raise ValueError(f"b must have shape ({n},)")
        if target_rrn < 0:
            raise ValueError("target_rrn must be non-negative")
        bnorm = float(np.linalg.norm(b))
        x = np.zeros(n) if x0 is None else np.array(x0, dtype=np.float64)

        tile = self.tile_elems if self.tile_elems else DEFAULT_TILE_ELEMS
        adaptive = self.z_storage == ADAPTIVE_STORAGE
        controller = PrecisionController(self.precision) if adaptive else None
        v_basis = KrylovBasis(
            n, self.m, "float64", basis_mode=self.basis_mode, tile_elems=tile
        )
        z_basis = KrylovBasis(
            n,
            self.m,
            # placeholder until the controller's first decision (taken
            # right before the first cycle, like CbGmres)
            controller.config.ladder[-1] if adaptive else self.z_storage,
            self._factory,
            basis_mode=self.basis_mode,
            tile_elems=tile,
            storage_factory=self._storage_factory,
            backend=self.backend,
        )
        stats = SolveStats(
            n=n,
            nnz=a.nnz,
            bits_per_value=z_basis.bits_per_value,
            basis_mode=self.basis_mode,
            basis_tile_elems=z_basis.tile_elems,
        )
        history: List[ResidualSample] = []
        if bnorm == 0.0:
            return GmresResult(
                x=np.zeros(n),
                converged=True,
                iterations=0,
                final_rrn=0.0,
                target_rrn=target_rrn,
                storage=f"fgmres[{self.z_storage}]",
                history=history,
                stats=stats,
            )

        total_iters = 0
        stagnant = 0
        prev_explicit = np.inf
        converged = False
        stalled = False
        # adaptive bookkeeping: per-format Z-traffic buckets + the state
        # of the cycle in flight (for controller feedback)
        cycle_mark: Optional[dict] = None
        bits_seen: dict = {}
        z_reads: dict = {}
        z_writes: dict = {}

        def bucket(d: dict, k: int) -> None:
            d[z_basis.storage] = d.get(z_basis.storage, 0) + k
            bits_seen[z_basis.storage] = z_basis.bits_per_value

        while True:
            r = b - a.matvec(x)
            stats.spmv_calls += 1
            stats.dense_vector_ops += 2
            beta = float(np.linalg.norm(r))
            rrn = beta / bnorm
            if record_history:
                history.append(ResidualSample(total_iters, rrn, "explicit"))
            if rrn <= target_rrn:
                converged = True
                break
            if total_iters >= self.max_iter:
                break
            if self.stall_restarts is not None and stats.restarts > 0:
                if rrn > prev_explicit * 0.999:
                    stagnant += 1
                    if stagnant >= self.stall_restarts:
                        stalled = True
                        break
                else:
                    stagnant = 0
            prev_explicit = min(prev_explicit, rrn)

            if controller is not None:
                if cycle_mark is not None:
                    controller.observe_cycle(CycleFeedback(
                        storage=cycle_mark["storage"],
                        start_rrn=cycle_mark["rrn"],
                        end_rrn=rrn,
                        iterations=total_iters - cycle_mark["iterations"],
                        reorthogonalizations=(
                            stats.reorthogonalizations - cycle_mark["reorth"]
                        ),
                    ))
                decision = controller.decide(rrn, target_rrn)
                if decision.storage != z_basis.storage:
                    z_basis.set_storage(decision.storage)
                stats.storage_trace.append(decision.storage)
                cycle_mark = {
                    "storage": z_basis.storage,
                    "rrn": rrn,
                    "iterations": total_iters,
                    "reorth": stats.reorthogonalizations,
                }

            v_basis.reset()
            z_basis.reset()
            v = r / beta
            v_basis.write_vector(0, v)
            # the V basis stays uncompressed: its traffic is float64
            lsq = GivensLeastSquares(self.m, beta)

            j_used = 0
            for j in range(1, self.m + 1):
                # z_{j-1} = M^-1 v_{j-1}, stored compressed (ref [17])
                z = prec.apply(v) if not prec.is_identity else v.copy()
                if not prec.is_identity:
                    stats.preconditioner_applies += 1
                z_basis.write_vector(j - 1, z)
                stats.basis_writes += 1
                if controller is not None:
                    bucket(z_writes, 1)
                # counted read: the SpMV streams z_{j-1} from compressed
                # storage (ref [17] halves the saving, not the traffic)
                w = a.matvec(z_basis.read_vector(j - 1))
                stats.spmv_calls += 1
                ores = cgs_orthogonalize(v_basis, j, w, self.eta)
                # V reads are full float64 vectors (not compressed):
                # accounted separately from the compressed Z traffic
                stats.uncompressed_basis_reads += 2 * j if ores.reorthogonalized else j
                stats.dense_vector_ops += 4
                stats.reorthogonalizations += int(ores.reorthogonalized)
                total_iters += 1
                stats.iterations += 1
                impl = lsq.append_column(ores.h, ores.h_next) / bnorm
                j_used = j
                if record_history:
                    history.append(ResidualSample(total_iters, impl, "implicit"))
                if ores.breakdown:
                    break
                v = ores.w / ores.h_next
                v_basis.write_vector(j, v)
                if impl <= target_rrn or total_iters >= self.max_iter:
                    break

            # x = x0 + Z_m y — the compressed basis is read here
            y = lsq.solve()
            x = x + z_basis.combine(j_used, y)
            stats.basis_reads += j_used
            if controller is not None:
                bucket(z_reads, j_used)
            stats.dense_vector_ops += 1
            stats.restarts += 1

        final_rrn = float(np.linalg.norm(b - a.matvec(x)) / bnorm)
        stats.spmv_calls += 1
        stats.bits_per_value = z_basis.bits_per_value
        if controller is not None:
            stats.reads_by_storage = dict(z_reads)
            stats.writes_by_storage = dict(z_writes)
            stats.precision_upshifts = controller.upshifts
            stats.precision_downshifts = controller.downshifts
            traffic = {
                f: z_reads.get(f, 0) + z_writes.get(f, 0) for f in bits_seen
            }
            weight = sum(traffic.values())
            if weight:
                stats.bits_per_value = (
                    sum(bits_seen[f] * traffic[f] for f in bits_seen) / weight
                )
        # both bases contribute float64 working set and fused-kernel work
        stats.basis_peak_float64_bytes = (
            v_basis.peak_float64_bytes + z_basis.peak_float64_bytes
        )
        for flog in (v_basis.fused_log, z_basis.fused_log):
            stats.fused_dot_calls += flog.dot_calls
            stats.fused_dot_vectors += flog.dot_vectors
            stats.fused_axpy_calls += flog.axpy_calls
            stats.fused_axpy_vectors += flog.axpy_vectors
            stats.fused_combine_calls += flog.combine_calls
            stats.fused_combine_vectors += flog.combine_vectors
            stats.fused_tiles += flog.tiles
            stats.fused_values += flog.values
        return GmresResult(
            x=x,
            converged=converged,
            iterations=total_iters,
            final_rrn=final_rrn,
            target_rrn=target_rrn,
            storage=f"fgmres[{self.z_storage}]",
            history=history,
            stats=stats,
            stalled=stalled,
            precision_trace=(
                list(controller.decisions) if controller is not None else []
            ),
        )
