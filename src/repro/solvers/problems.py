"""Benchmark problem construction (paper Section V-B).

The right-hand side is generated deterministically and identically to
[1]: ``s[i] = sin(i)``, expected solution ``x_sol = s / ||s||_2``, and
``b = A x_sol``.  All solvers start from ``x0 = 0``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..sparse.csr import CSRMatrix
from ..sparse.suite import SUITE, build_matrix, resolve_scale

__all__ = ["Problem", "make_expected_solution", "make_rhs", "make_problem"]


def make_expected_solution(n: int) -> np.ndarray:
    """``x_sol = s / ||s||`` with ``s[i] = sin(i)`` (paper Section V-B)."""
    s = np.sin(np.arange(n, dtype=np.float64))
    return s / np.linalg.norm(s)


def make_rhs(a: CSRMatrix) -> "tuple[np.ndarray, np.ndarray]":
    """Deterministic ``(b, x_sol)`` for a matrix, per the paper's recipe."""
    x_sol = make_expected_solution(a.shape[1])
    return a.matvec(x_sol), x_sol


@dataclass
class Problem:
    """A fully specified benchmark instance."""

    name: str
    a: CSRMatrix
    b: np.ndarray
    x_sol: np.ndarray
    target_rrn: float
    scale: str


def make_problem(name: str, scale: Optional[str] = None, target_rrn: Optional[float] = None) -> Problem:
    """Build matrix + rhs + target for a Table I suite entry.

    ``target_rrn`` overrides the registry's (pre)calibrated target; see
    :mod:`repro.solvers.calibration` for the paper's calibration recipe.
    """
    scale = resolve_scale(scale)
    a = build_matrix(name, scale)
    b, x_sol = make_rhs(a)
    if target_rrn is None:
        target_rrn = SUITE[name].target_for(scale)
    return Problem(name=name, a=a, b=b, x_sol=x_sol, target_rrn=target_rrn, scale=scale)
