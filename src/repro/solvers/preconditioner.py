"""Preconditioners for CB-GMRES (the ``M^-1`` of the paper's Fig. 1).

The paper's experiments run unpreconditioned ("to not blur the numerical
impact", Section V-C), but the algorithm it implements is right-
preconditioned GMRES: ``w := A(M^-1 v)`` and ``x := x0 + M^-1 (V_m y)``.
This module provides that machinery, including the reduced-precision
block-Jacobi storage of the paper's ref [15] (Anzt et al., "Adaptive
precision in block-Jacobi preconditioning") — the lineage the FRSZ2 idea
grew out of: store the preconditioner in low precision, compute in
double.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from ..sparse.csr import CSRMatrix

__all__ = [
    "Preconditioner",
    "IdentityPreconditioner",
    "JacobiPreconditioner",
    "BlockJacobiPreconditioner",
]


class Preconditioner(abc.ABC):
    """Right preconditioner: provides ``y = M^-1 v``."""

    @abc.abstractmethod
    def apply(self, v: np.ndarray) -> np.ndarray:
        """Return ``M^-1 v``."""

    @property
    def is_identity(self) -> bool:
        return False


class IdentityPreconditioner(Preconditioner):
    """No preconditioning (the paper's experimental configuration)."""

    def apply(self, v: np.ndarray) -> np.ndarray:
        return np.asarray(v, dtype=np.float64)

    @property
    def is_identity(self) -> bool:
        return True


class JacobiPreconditioner(Preconditioner):
    """Diagonal scaling ``M = diag(A)``.

    Zero diagonal entries fall back to 1 (no scaling for that row).
    """

    def __init__(self, a: CSRMatrix) -> None:
        if a.shape[0] != a.shape[1]:
            raise ValueError("Jacobi preconditioner requires a square matrix")
        d = a.diagonal()
        safe = np.where(d != 0.0, d, 1.0)
        self._inv_diag = 1.0 / safe

    def apply(self, v: np.ndarray) -> np.ndarray:
        return np.asarray(v, dtype=np.float64) * self._inv_diag


class BlockJacobiPreconditioner(Preconditioner):
    """Block-diagonal inverse with optional reduced-precision storage.

    ``M = blockdiag(A_11, A_22, ...)`` with contiguous blocks of
    ``block_size`` rows; each diagonal block is densified, inverted, and
    stored in ``storage_dtype`` (float64/float32/float16) while the
    application happens in float64 — exactly the adaptive-precision
    block-Jacobi scheme of paper ref [15] that pioneered the
    "compressed storage, double arithmetic" idea FRSZ2 generalizes.

    Singular blocks fall back to the (pseudo-)identity for their rows.
    """

    def __init__(
        self,
        a: CSRMatrix,
        block_size: int = 8,
        storage_dtype=np.float64,
    ) -> None:
        if a.shape[0] != a.shape[1]:
            raise ValueError("block-Jacobi requires a square matrix")
        if block_size < 1:
            raise ValueError("block_size must be positive")
        n = a.shape[0]
        self.n = n
        self.block_size = int(block_size)
        self.storage_dtype = np.dtype(storage_dtype)
        if self.storage_dtype not in (np.dtype(np.float64), np.dtype(np.float32), np.dtype(np.float16)):
            raise ValueError("storage_dtype must be float64, float32 or float16")
        nb = -(-n // block_size)
        self._inverses = []
        rows = a._rows
        for b in range(nb):
            lo = b * block_size
            hi = min(lo + block_size, n)
            m = hi - lo
            block = np.zeros((m, m))
            sel = (rows >= lo) & (rows < hi) & (a.indices >= lo) & (a.indices < hi)
            block[rows[sel] - lo, a.indices[sel] - lo] = a.data[sel]
            try:
                inv = np.linalg.inv(block)
            except np.linalg.LinAlgError:
                inv = np.eye(m)
            with np.errstate(over="ignore"):
                stored = inv.astype(self.storage_dtype)
            if not np.all(np.isfinite(stored.astype(np.float64))):
                # saturate overflowing entries instead of poisoning applies
                limit = np.finfo(self.storage_dtype).max
                stored = np.clip(inv, -float(limit), float(limit)).astype(self.storage_dtype)
            self._inverses.append(stored)

    @property
    def stored_nbytes(self) -> int:
        """Bytes the block inverses occupy (the quantity [15] reduces)."""
        return sum(inv.nbytes for inv in self._inverses)

    def apply(self, v: np.ndarray) -> np.ndarray:
        v = np.asarray(v, dtype=np.float64)
        if v.shape != (self.n,):
            raise ValueError(f"expected vector of length {self.n}")
        out = np.empty(self.n)
        bs = self.block_size
        for b, inv in enumerate(self._inverses):
            lo = b * bs
            hi = lo + inv.shape[0]
            # arithmetic in double precision, storage in reduced precision
            out[lo:hi] = inv.astype(np.float64) @ v[lo:hi]
        return out
