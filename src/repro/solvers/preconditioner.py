"""Preconditioners for CB-GMRES (the ``M^-1`` of the paper's Fig. 1).

The paper's experiments run unpreconditioned ("to not blur the numerical
impact", Section V-C), but the algorithm it implements is right-
preconditioned GMRES: ``w := A(M^-1 v)`` and ``x := x0 + M^-1 (V_m y)``.
This module provides that machinery as a first-class tier:

:class:`JacobiPreconditioner`
    Diagonal scaling.
:class:`BlockJacobiPreconditioner`
    Block-diagonal inverses held in a *storage ladder*
    (``float64 | float32 | float16 | frsz2_32 | frsz2_16``) through the
    same accessor machinery the Krylov basis uses — the reduced-precision
    block-Jacobi of the paper's ref [15] (Anzt et al., "Adaptive
    precision in block-Jacobi preconditioning"), extended from plain
    IEEE truncation to FRSZ2 block compression.  Stored values are
    decoded per apply; the arithmetic itself is always float64.
:class:`ILU0Preconditioner`
    CSR-native incomplete LU with no fill-in, applied through sparse
    unit-lower / upper triangular solves.  Factor values may sit on the
    same storage ladder.

The hot apply paths — the two triangular solves and the batched
block-diagonal apply — are dispatch-registry kernels
(``prec.lower_trisolve``, ``prec.upper_trisolve``,
``prec.block_diag_apply``; see :mod:`repro.solvers.prec_kernels`) with
bit-identical ``numpy`` and ``jit`` implementations, so a preconditioned
solve stays byte-equal across backends.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, Optional

import numpy as np

from ..accessor import make_accessor
from ..jit import dispatch as _dispatch
from ..observe import NULL_TRACER
from ..sparse.csr import CSRMatrix
from . import prec_kernels as _prec_kernels  # noqa: F401 - registers numpy kernels

__all__ = [
    "PRECONDITIONERS",
    "PREC_STORAGES",
    "PreconditionerError",
    "ZeroPivotError",
    "Preconditioner",
    "IdentityPreconditioner",
    "JacobiPreconditioner",
    "BlockJacobiPreconditioner",
    "ILU0Preconditioner",
    "make_preconditioner",
]

#: accepted values for every ``preconditioner=`` knob
PRECONDITIONERS = ("none", "jacobi", "block_jacobi", "ilu0")

#: the storage ladder exposed on the CLI (``float16`` is additionally
#: accepted by the classes for ref-[15] compatibility)
PREC_STORAGES = ("float64", "float32", "frsz2_32", "frsz2_16")

_CLASS_STORAGES = PREC_STORAGES + ("float16",)

_DTYPE_TO_STORAGE = {
    np.dtype(np.float64): "float64",
    np.dtype(np.float32): "float32",
    np.dtype(np.float16): "float16",
}


class PreconditionerError(ValueError):
    """A preconditioner could not be built from the given configuration."""


class ZeroPivotError(PreconditionerError):
    """ILU(0) hit a structurally missing or exactly-zero pivot."""

    def __init__(self, row: int) -> None:
        super().__init__(f"ILU(0) zero pivot at row {row}")
        self.row = int(row)


def _storage_limit(storage: str) -> float:
    """Saturation bound for ``storage`` (finite-max of the IEEE carrier)."""
    if storage == "float32":
        return float(np.finfo(np.float32).max)
    if storage == "float16":
        return float(np.finfo(np.float16).max)
    return float(np.finfo(np.float64).max)


class Preconditioner(abc.ABC):
    """Right preconditioner: provides ``y = M^-1 v``."""

    tracer = NULL_TRACER

    @abc.abstractmethod
    def apply(self, v: np.ndarray) -> np.ndarray:
        """Return ``M^-1 v``."""

    @property
    def is_identity(self) -> bool:
        return False

    def attach_tracer(self, tracer) -> None:
        """Adopt the solver's tracer unless one was set at construction."""
        if tracer is not None and self.tracer is NULL_TRACER:
            self.tracer = tracer

    def cost_info(self) -> Optional[Dict[str, Any]]:
        """Inputs for :func:`repro.gpu.timing.prec_apply_cost` (None = free)."""
        return None


class IdentityPreconditioner(Preconditioner):
    """No preconditioning (the paper's experimental configuration)."""

    def apply(self, v: np.ndarray) -> np.ndarray:
        return np.asarray(v, dtype=np.float64)

    @property
    def is_identity(self) -> bool:
        return True


class JacobiPreconditioner(Preconditioner):
    """Diagonal scaling ``M = diag(A)``.

    Zero diagonal entries fall back to 1 (no scaling for that row).
    Always stored in float64 — at one value per row there is nothing
    worth compressing.
    """

    storage = "float64"

    def __init__(self, a: CSRMatrix, tracer=None) -> None:
        if a.shape[0] != a.shape[1]:
            raise ValueError("Jacobi preconditioner requires a square matrix")
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.n = a.shape[0]
        with self.tracer.span("prec.setup", kind="jacobi", storage=self.storage):
            d = a.diagonal()
            safe = np.where(d != 0.0, d, 1.0)
            self._inv_diag = 1.0 / safe

    @property
    def stored_nbytes(self) -> int:
        return int(self._inv_diag.nbytes)

    @property
    def float64_nbytes(self) -> int:
        return int(self._inv_diag.nbytes)

    def cost_info(self) -> Dict[str, Any]:
        return {
            "kind": "jacobi",
            "storage": self.storage,
            "stored_bytes": self.stored_nbytes,
            "float64_bytes": self.float64_nbytes,
            "entries": self.n,
        }

    def apply(self, v: np.ndarray) -> np.ndarray:
        with self.tracer.span("prec.apply", kind="jacobi", storage=self.storage):
            out = np.asarray(v, dtype=np.float64) * self._inv_diag
        self.tracer.count("prec.applies", 1)
        self.tracer.count("prec.apply.bytes", self.stored_nbytes + 16 * self.n)
        return out


class BlockJacobiPreconditioner(Preconditioner):
    """Block-diagonal inverse with ladder (optionally FRSZ2) storage.

    ``M = blockdiag(A_11, A_22, ...)`` with contiguous blocks of
    ``block_size`` rows; each diagonal block is densified, inverted in
    float64, and the flattened (zero-padded to ``block_size``) blocks
    are written through a storage accessor — float64/float32/float16
    keep the plain reduced-precision scheme of paper ref [15], while
    ``frsz2_32``/``frsz2_16`` extend it to FRSZ2 block compression.
    Every apply decodes the stored blocks back to float64 and runs the
    ``prec.block_diag_apply`` dispatch kernel, so arithmetic is always
    double ("compressed storage, double arithmetic").

    Singular blocks fall back to the identity for their rows; values
    outside the storage carrier's finite range saturate to its maximum
    instead of poisoning applies with infinities.
    """

    def __init__(
        self,
        a: CSRMatrix,
        block_size: int = 8,
        storage_dtype=None,
        *,
        storage: Optional[str] = None,
        backend: Optional[str] = None,
        tracer=None,
    ) -> None:
        if a.shape[0] != a.shape[1]:
            raise ValueError("block-Jacobi requires a square matrix")
        if block_size < 1:
            raise ValueError("block_size must be positive")
        if storage is None:
            dt = np.dtype(storage_dtype if storage_dtype is not None else np.float64)
            if dt not in _DTYPE_TO_STORAGE:
                raise PreconditionerError(
                    "storage_dtype must be float64, float32 or float16"
                )
            storage = _DTYPE_TO_STORAGE[dt]
        elif storage_dtype is not None:
            raise PreconditionerError("pass either storage= or storage_dtype=, not both")
        if storage not in _CLASS_STORAGES:
            raise PreconditionerError(
                f"unknown prec storage {storage!r}; expected one of {_CLASS_STORAGES}"
            )
        n = a.shape[0]
        self.n = n
        self.block_size = int(block_size)
        self.storage = storage
        self.backend = _dispatch.resolve_backend(backend)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._kernel = _dispatch.get_kernel("prec.block_diag_apply", self.backend)
        bs = self.block_size
        nb = -(-n // bs)
        self.num_blocks = nb
        with self.tracer.span("prec.setup", kind="block_jacobi", storage=storage):
            flat = np.zeros(nb * bs * bs, dtype=np.float64)
            rows = a._rows
            for b in range(nb):
                lo = b * bs
                hi = min(lo + bs, n)
                m = hi - lo
                block = np.zeros((m, m))
                sel = (rows >= lo) & (rows < hi) & (a.indices >= lo) & (a.indices < hi)
                block[rows[sel] - lo, a.indices[sel] - lo] = a.data[sel]
                try:
                    inv = np.linalg.inv(block)
                except np.linalg.LinAlgError:
                    inv = np.eye(m)
                padded = np.zeros((bs, bs))
                padded[:m, :m] = inv
                flat[b * bs * bs : (b + 1) * bs * bs] = padded.ravel()
            # saturate before encoding so narrow carriers store +-max,
            # not inf (the pre-ladder semantics of this class)
            limit = _storage_limit(storage)
            flat = np.clip(flat, -limit, limit)
            self._acc = make_accessor(storage, nb * bs * bs, backend=self.backend)
            self._acc.write(flat)

    @property
    def stored_nbytes(self) -> int:
        """Bytes the block inverses occupy (the quantity [15] reduces)."""
        return int(self._acc.stored_nbytes())

    @property
    def float64_nbytes(self) -> int:
        return int(self.num_blocks * self.block_size * self.block_size * 8)

    def cost_info(self) -> Dict[str, Any]:
        return {
            "kind": "block_jacobi",
            "storage": self.storage,
            "stored_bytes": self.stored_nbytes,
            "float64_bytes": self.float64_nbytes,
            "entries": self.num_blocks * self.block_size * self.block_size,
        }

    def apply(self, v: np.ndarray) -> np.ndarray:
        v = np.asarray(v, dtype=np.float64)
        if v.shape != (self.n,):
            raise ValueError(f"expected vector of length {self.n}")
        with self.tracer.span("prec.apply", kind="block_jacobi", storage=self.storage):
            blocks = self._acc.read()
            out = self._kernel(blocks, v, self.block_size, self.n)
        self.tracer.count("prec.applies", 1)
        self.tracer.count("prec.apply.bytes", self.stored_nbytes + 16 * self.n)
        return out


class ILU0Preconditioner(Preconditioner):
    """Incomplete LU factorization with zero fill-in, ``M = L U``.

    The factorization keeps exactly the sparsity pattern of ``A`` (IKJ
    ordering with a scatter workspace), splitting into a unit-lower
    factor ``L`` (strictly-lower multipliers, implicit unit diagonal)
    and an upper factor ``U`` (strictly-upper entries plus a diagonal).
    Applying ``M^-1`` is two sparse triangular sweeps through the
    ``prec.lower_trisolve`` / ``prec.upper_trisolve`` dispatch kernels.

    Factor *values* may live on the reduced/compressed storage ladder
    (decoded per apply); the integer pattern arrays are identical for
    every storage and excluded from the byte accounting.  A structurally
    missing or exactly-zero pivot raises :class:`ZeroPivotError` naming
    the row — ILU(0) existence is not guaranteed for indefinite
    matrices.  Note a narrow storage can round a small pivot further;
    ``float64`` (the default) is the robust choice.
    """

    def __init__(
        self,
        a: CSRMatrix,
        storage: str = "float64",
        *,
        backend: Optional[str] = None,
        tracer=None,
    ) -> None:
        if a.shape[0] != a.shape[1]:
            raise ValueError("ILU(0) requires a square matrix")
        if storage not in _CLASS_STORAGES:
            raise PreconditionerError(
                f"unknown prec storage {storage!r}; expected one of {_CLASS_STORAGES}"
            )
        n = a.shape[0]
        self.n = n
        self.storage = storage
        self.backend = _dispatch.resolve_backend(backend)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._lower = _dispatch.get_kernel("prec.lower_trisolve", self.backend)
        self._upper = _dispatch.get_kernel("prec.upper_trisolve", self.backend)
        with self.tracer.span("prec.setup", kind="ilu0", storage=storage):
            self._factorize(a)

    def _factorize(self, a: CSRMatrix) -> None:
        n = self.n
        # canonicalize to column-sorted rows so "entries left of the
        # diagonal" is a prefix of each row
        rows = a._rows
        order = np.lexsort((a.indices, rows))
        cols_arr = np.asarray(a.indices, dtype=np.int64)[order]
        vals_arr = np.asarray(a.data, dtype=np.float64)[order]
        ip = a.indptr.tolist()
        cols = cols_arr.tolist()
        lu = vals_arr.tolist()
        pos = [-1] * n
        diag_pos = [-1] * n
        for i in range(n):
            s, e = ip[i], ip[i + 1]
            for k in range(s, e):
                pos[cols[k]] = k
            for kk in range(s, e):
                j = cols[kk]
                if j >= i:
                    break
                dp = diag_pos[j]
                f = lu[kk] / lu[dp]
                lu[kk] = f
                for t in range(dp + 1, ip[j + 1]):
                    p = pos[cols[t]]
                    if p >= 0:
                        lu[p] = lu[p] - f * lu[t]
            dpi = -1
            for k in range(s, e):
                if cols[k] == i:
                    dpi = k
                    break
            if dpi < 0 or lu[dpi] == 0.0:
                for k in range(s, e):
                    pos[cols[k]] = -1
                raise ZeroPivotError(i)
            diag_pos[i] = dpi
            for k in range(s, e):
                pos[cols[k]] = -1
        l_ip, l_cols, l_vals = [0], [], []
        u_ip, u_cols, u_vals = [0], [], []
        udiag = []
        for i in range(n):
            for k in range(ip[i], diag_pos[i]):
                l_cols.append(cols[k])
                l_vals.append(lu[k])
            l_ip.append(len(l_cols))
            udiag.append(lu[diag_pos[i]])
            for k in range(diag_pos[i] + 1, ip[i + 1]):
                u_cols.append(cols[k])
                u_vals.append(lu[k])
            u_ip.append(len(u_cols))
        self._l_indptr = np.asarray(l_ip, dtype=np.int64)
        self._l_indices = np.asarray(l_cols, dtype=np.int64)
        self._u_indptr = np.asarray(u_ip, dtype=np.int64)
        self._u_indices = np.asarray(u_cols, dtype=np.int64)
        self._l_acc = self._store(np.asarray(l_vals, dtype=np.float64))
        self._u_acc = self._store(np.asarray(u_vals, dtype=np.float64))
        self._d_acc = self._store(np.asarray(udiag, dtype=np.float64))

    def _store(self, values: np.ndarray):
        if values.size == 0:
            return None
        limit = _storage_limit(self.storage)
        acc = make_accessor(self.storage, values.size, backend=self.backend)
        acc.write(np.clip(values, -limit, limit))
        return acc

    @staticmethod
    def _read(acc) -> np.ndarray:
        return acc.read() if acc is not None else np.empty(0, dtype=np.float64)

    @property
    def nnz(self) -> int:
        """Stored factor values: strict-L + strict-U + the U diagonal."""
        return int(self._l_indices.size + self._u_indices.size + self.n)

    @property
    def stored_nbytes(self) -> int:
        """Bytes the factor values occupy (pattern arrays excluded)."""
        return int(
            sum(
                acc.stored_nbytes()
                for acc in (self._l_acc, self._u_acc, self._d_acc)
                if acc is not None
            )
        )

    @property
    def float64_nbytes(self) -> int:
        return 8 * self.nnz

    def cost_info(self) -> Dict[str, Any]:
        return {
            "kind": "ilu0",
            "storage": self.storage,
            "stored_bytes": self.stored_nbytes,
            "float64_bytes": self.float64_nbytes,
            "entries": self.nnz,
        }

    def apply(self, v: np.ndarray) -> np.ndarray:
        v = np.asarray(v, dtype=np.float64)
        if v.shape != (self.n,):
            raise ValueError(f"expected vector of length {self.n}")
        with self.tracer.span("prec.apply", kind="ilu0", storage=self.storage):
            y = self._lower(
                self._l_indptr, self._l_indices, self._read(self._l_acc), v
            )
            out = self._upper(
                self._u_indptr,
                self._u_indices,
                self._read(self._u_acc),
                self._read(self._d_acc),
                y,
            )
        self.tracer.count("prec.applies", 1)
        self.tracer.count("prec.apply.bytes", self.stored_nbytes + 16 * self.n)
        return out


def make_preconditioner(
    name: str,
    a: CSRMatrix,
    storage: str = "float64",
    block_size: int = 8,
    backend: Optional[str] = None,
    tracer=None,
) -> Preconditioner:
    """Build a preconditioner by CLI name.

    ``name`` is one of :data:`PRECONDITIONERS`; ``storage`` (one of
    :data:`PREC_STORAGES`) selects the value-storage ladder and is
    ignored by ``none`` and ``jacobi`` (a diagonal is too small to be
    worth compressing).
    """
    if name not in PRECONDITIONERS:
        raise PreconditionerError(
            f"unknown preconditioner {name!r}; expected one of {PRECONDITIONERS}"
        )
    if storage not in PREC_STORAGES:
        raise PreconditionerError(
            f"unknown prec storage {storage!r}; expected one of {PREC_STORAGES}"
        )
    if name == "none":
        return IdentityPreconditioner()
    if name == "jacobi":
        return JacobiPreconditioner(a, tracer=tracer)
    if name == "block_jacobi":
        return BlockJacobiPreconditioner(
            a, block_size=block_size, storage=storage, backend=backend, tracer=tracer
        )
    return ILU0Preconditioner(a, storage=storage, backend=backend, tracer=tracer)
