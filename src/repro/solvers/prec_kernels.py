"""Numpy reference kernels for the preconditioner apply paths.

The three hot kernels of :mod:`repro.solvers.preconditioner` — the
sparse unit-lower/upper triangular solves of ILU(0) and the batched
block-diagonal apply of block-Jacobi — are registered here under the
``numpy`` backend of the :mod:`repro.jit` dispatch registry, mirroring
how the codec and SpMV kernels are wired.  The jit engines register the
same names under ``jit`` and must reproduce these results *bit for bit*
(:mod:`repro.jit.selftest`).

Bit-identity notes
------------------
A sparse triangular solve is a strictly sequential recurrence — row
``i`` consumes the already-solved entries ``y[j], j < i`` — so there is
no vectorized formulation that preserves the evaluation order.  The
reference therefore runs the scalar loops in pure Python over
``.tolist()`` data: a Python ``float`` is an IEEE-754 double and every
``s -= vals[k] * y[cols[k]]`` rounds the multiply, then the subtract,
exactly like the compiled kernels built with ``-ffp-contract=off`` (C)
or Numba's default no-fastmath semantics.  The block-diagonal apply
accumulates each output row in stored order for the same reason.
These loops are the *reference semantics*, not the fast path — the jit
engines replay them in compiled code.
"""

from __future__ import annotations

import numpy as np

from ..jit import dispatch as _dispatch

__all__ = [
    "lower_unit_trisolve_numpy",
    "upper_trisolve_numpy",
    "block_diag_apply_numpy",
]


@_dispatch.register("prec.lower_trisolve", "numpy")
def lower_unit_trisolve_numpy(indptr, indices, data, b) -> np.ndarray:
    """Solve ``L y = b`` with ``L`` strictly-lower CSR plus a unit diagonal.

    ``indptr``/``indices``/``data`` hold only the strictly-lower
    entries (the multipliers of the ILU(0) factorization); the unit
    diagonal is implicit.
    """
    n = len(b)
    ip = indptr.tolist()
    cols = indices.tolist()
    vals = data.tolist()
    y = np.asarray(b, dtype=np.float64).tolist()
    for i in range(n):
        s = y[i]
        for k in range(ip[i], ip[i + 1]):
            s -= vals[k] * y[cols[k]]
        y[i] = s
    return np.asarray(y, dtype=np.float64)


@_dispatch.register("prec.upper_trisolve", "numpy")
def upper_trisolve_numpy(indptr, indices, data, udiag, b) -> np.ndarray:
    """Solve ``U y = b`` with ``U`` strictly-upper CSR plus diagonal ``udiag``."""
    n = len(b)
    ip = indptr.tolist()
    cols = indices.tolist()
    vals = data.tolist()
    diag = np.asarray(udiag, dtype=np.float64).tolist()
    y = np.asarray(b, dtype=np.float64).tolist()
    for i in range(n - 1, -1, -1):
        s = y[i]
        for k in range(ip[i], ip[i + 1]):
            s -= vals[k] * y[cols[k]]
        y[i] = s / diag[i]
    return np.asarray(y, dtype=np.float64)


@_dispatch.register("prec.block_diag_apply", "numpy")
def block_diag_apply_numpy(blocks, v, bs, n) -> np.ndarray:
    """Apply a block-diagonal operator stored as flattened dense blocks.

    ``blocks`` is the float64 flattening of ``ceil(n/bs)`` row-major
    ``bs x bs`` blocks (the trailing block zero-padded); only the
    leading ``min(bs, n - lo)`` rows/columns of each block are touched,
    so the padding content never reaches the output.
    """
    bl = np.asarray(blocks, dtype=np.float64).tolist()
    vv = np.asarray(v, dtype=np.float64).tolist()
    nb = -(-n // bs)
    out = [0.0] * n
    for b in range(nb):
        lo = b * bs
        hi = min(lo + bs, n)
        base = b * bs * bs
        for i in range(lo, hi):
            s = 0.0
            row = base + (i - lo) * bs
            for k in range(lo, hi):
                s += bl[row + (k - lo)] * vv[k]
            out[i] = s
    return np.asarray(out, dtype=np.float64)
