"""Batched multi-RHS CB-GMRES (lockstep block Arnoldi over ``(n, B)``).

Serving traffic is many right-hand sides against few matrices (ROADMAP
item 2).  This module runs ``B`` simultaneous restarted-GMRES processes
against one matrix: every unfinished column performs its restart
evaluation together (one multi-vector SpMV), and all columns inside an
Arnoldi cycle advance through the same step ``j`` in lockstep, so

* the SpMV is one :meth:`~repro.sparse.engine.SpmvEngine.matmat` over
  the active columns instead of ``B`` separate matvecs,
* the orthogonalization streams every column's stored basis through one
  stacked tile pass (:mod:`repro.fused.batch`) — for FRSZ2 storage the
  decode of all ``C*j`` basis vectors is a single batched codec call
  per tile,
* new basis vectors of all active columns compress in one
  :meth:`~repro.core.frsz2.FRSZ2.compress_batch` encode
  (:func:`repro.solvers.basis.write_basis_vectors_batch`).

Bit-identity contract
---------------------
Column ``c`` of a batched solve is **bit-identical** to an independent
:meth:`~repro.solvers.gmres.CbGmres.solve` on ``B[:, c]``: identical
solution bits, residual history, iteration counts, events, and
per-column work stats.  This holds because every per-column scalar
decision (convergence, stalling, the eta test, breakdown handling,
recovery budgets) is evaluated with exactly the solo code's operations
in the solo code's order, and each batched kernel is bit-identical per
column to its solo counterpart (see :mod:`repro.fused.batch`,
:meth:`~repro.sparse.csr.CSRMatrix.matmat`,
:func:`~repro.accessor.frsz2_accessor.write_frsz2_batch`).  Columns
that converge, break down, or get poisoned simply leave the lockstep
early — they stop doing work while the rest of the batch proceeds.

With ``B == 1`` (or an operator without ``matmat``, e.g. a fault
injector) every batched fast path is bypassed and the code runs the
solo kernels directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Union

import numpy as np

from ..fused.batch import BatchTileReader, axpy_batch, dot_basis_batch
from .basis import KrylovBasis, write_basis_vectors_batch
from .gmres import BreakdownEvent, GmresResult, ResidualSample, SolveStats
from .hessenberg import GivensLeastSquares
from .orthogonal import (
    OrthogonalizationResult,
    _finish,
    cgs_orthogonalize,
    mgs_orthogonalize,
)

__all__ = ["BatchGmresResult", "solve_batch"]


@dataclass
class BatchGmresResult:
    """Outcome of one batched multi-RHS solve.

    ``results[c]`` is the full :class:`~repro.solvers.gmres.GmresResult`
    of column ``c`` — bit-identical to an independent solve of that
    column.  The batch-level counters record how much work actually ran
    through the shared fast paths.
    """

    results: List[GmresResult] = field(default_factory=list)
    #: multi-vector SpMV invocations (restart + Arnoldi + final check)
    batched_spmv_calls: int = 0
    #: basis vectors written through the one-encode batched path
    batched_basis_writes: int = 0
    #: Arnoldi steps orthogonalized through the stacked tile kernels
    batched_ortho_steps: int = 0

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, i: int) -> GmresResult:
        return self.results[i]

    def __iter__(self):
        return iter(self.results)

    @property
    def converged(self) -> "List[bool]":
        return [r.converged for r in self.results]

    @property
    def iterations(self) -> "List[int]":
        return [r.iterations for r in self.results]


class _Column:
    """Mutable per-RHS solver state, mirroring ``CbGmres.solve`` locals."""

    __slots__ = (
        "idx", "b", "bnorm", "target", "x", "basis", "stats", "history",
        "events", "total_iters", "stagnant", "fruitless", "prev_explicit",
        "rrn", "converged", "stalled", "exhausted", "finished", "result",
        "lsq", "j_used", "poison", "in_cycle", "in_step", "v", "last_impl",
    )

    def __init__(self, idx, b, bnorm, target, x, basis, stats):
        self.idx = idx
        self.b = b
        self.bnorm = bnorm
        self.target = target
        self.x = x
        self.basis = basis
        self.stats = stats
        self.history: List[ResidualSample] = []
        self.events: List[BreakdownEvent] = []
        self.total_iters = 0
        self.stagnant = 0
        self.fruitless = 0
        self.prev_explicit = np.inf
        self.rrn = np.inf
        self.converged = False
        self.stalled = False
        self.exhausted = False
        self.finished = False
        self.result: Optional[GmresResult] = None
        self.lsq: Optional[GivensLeastSquares] = None
        self.j_used = 0
        self.poison: Optional[BreakdownEvent] = None
        self.in_cycle = False
        self.in_step = False
        self.v: Optional[np.ndarray] = None
        self.last_impl = np.inf

    def recover(self, event: BreakdownEvent, max_recoveries: int) -> bool:
        """Log a recovery; True while the fruitless budget remains."""
        self.events.append(event)
        self.stats.recoveries += 1
        self.fruitless += 1
        return self.fruitless <= max_recoveries


def _cgs_orthogonalize_batch(
    bases: "List[KrylovBasis]",
    j: int,
    W: np.ndarray,
    cols: Sequence[int],
    eta: float,
    tile_elems: int,
    tracer,
) -> "List[OrthogonalizationResult]":
    """Batched CGS + conditional re-orthogonalization.

    ``W[:, cols[i]]`` holds column ``i``'s (already copied) SpMV result
    and is orthogonalized in place against ``bases[i]``.  Result ``i``
    is bit-identical to ``cgs_orthogonalize(bases[i], j, w_i, eta)``:
    the per-column scalar sequence (norms, eta test, ``h = h + u``) is
    the solo code's, and the fused dot/axpy passes are bit-identical
    per column (:mod:`repro.fused.batch`).
    """
    C = len(cols)
    logs = [b.fused_log for b in bases]
    w_tilde = [float(np.linalg.norm(W[:, col])) for col in cols]
    readers = [b._reader(j) for b in bases]
    breader = BatchTileReader(readers)
    with tracer.span("basis_read", vectors=C * j):
        for b in bases:
            b._count_read(j)
        H = dot_basis_batch(breader, W, cols, tile_elems, tracer, logs)
    with tracer.span("basis_read", vectors=C * j):
        for b in bases:
            b._count_read(j)
        axpy_batch(breader, H, W, cols, tile_elems, tracer, logs)
    h_next = [float(np.linalg.norm(W[:, col])) for col in cols]
    h_first = list(h_next)
    h_cols: "List[np.ndarray]" = [H[:, i] for i in range(C)]
    reorth = [hn < eta * wt for hn, wt in zip(h_next, w_tilde)]
    sub = [i for i in range(C) if reorth[i]]
    if sub:
        sreader = BatchTileReader([readers[i] for i in sub])
        slogs = [logs[i] for i in sub]
        scols = [cols[i] for i in sub]
        with tracer.span("basis_read", vectors=len(sub) * j):
            for i in sub:
                bases[i]._count_read(j)
            U = dot_basis_batch(sreader, W, scols, tile_elems, tracer, slogs)
        with tracer.span("basis_read", vectors=len(sub) * j):
            for i in sub:
                bases[i]._count_read(j)
            axpy_batch(sreader, U, W, scols, tile_elems, tracer, slogs)
        for k, i in enumerate(sub):
            h_cols[i] = h_cols[i] + U[:, k]
            h_next[i] = float(np.linalg.norm(W[:, cols[i]]))
    return [
        _finish(
            h_cols[i], h_next[i], W[:, cols[i]], w_tilde[i],
            reorth[i], h_first[i], eta,
        )
        for i in range(C)
    ]


def solve_batch(
    solver,
    B: Union[np.ndarray, Sequence[np.ndarray]],
    target_rrn: Union[float, Sequence[float]],
    x0: Optional[np.ndarray] = None,
    record_history: bool = True,
    monitor: "Callable[[int, int, int, KrylovBasis, float], None] | None" = None,
) -> BatchGmresResult:
    """Run ``B`` lockstep CB-GMRES solves sharing one matrix.

    Parameters
    ----------
    solver : CbGmres
        The configured solver (matrix, storage, restart length, ...).
    B : ndarray (n, B) or sequence of (n,) vectors
        Right-hand sides, one per column.
    target_rrn : float or sequence of float
        Per-column relative-residual target (a scalar applies to all).
    x0 : ndarray (n, B), optional
        Initial guesses; defaults to zero (paper §V-B).
    record_history, monitor
        As in :meth:`~repro.solvers.gmres.CbGmres.solve`; the batched
        monitor receives the column index first:
        ``monitor(col, iteration, j, basis, implicit_rrn)``.

    Returns
    -------
    BatchGmresResult
        Per-column :class:`~repro.solvers.gmres.GmresResult` objects
        (bit-identical to independent solves) plus batch-path counters.
    """
    a = solver.a
    n = a.shape[0]
    m = solver.m
    prec = solver.preconditioner
    tracer = solver.tracer
    use_cgs = solver.orthogonalization == "cgs"

    if isinstance(B, np.ndarray):
        if B.ndim == 1:
            B = B[:, None]
        if B.ndim != 2 or B.shape[0] != n:
            raise ValueError(f"B must have shape ({n}, nrhs)")
        b_cols = [np.ascontiguousarray(B[:, c], dtype=np.float64)
                  for c in range(B.shape[1])]
    else:
        b_cols = [np.ascontiguousarray(b, dtype=np.float64) for b in B]
        for b in b_cols:
            if b.shape != (n,):
                raise ValueError(f"every right-hand side must have shape ({n},)")
    nrhs = len(b_cols)
    if nrhs == 0:
        return BatchGmresResult()
    if np.isscalar(target_rrn):
        targets = [float(target_rrn)] * nrhs
    else:
        targets = [float(t) for t in target_rrn]
        if len(targets) != nrhs:
            raise ValueError("target_rrn must be scalar or one per column")
    for t in targets:
        if t < 0:
            raise ValueError("target_rrn must be non-negative")
    if x0 is not None:
        x0 = np.asarray(x0, dtype=np.float64)
        if x0.shape != (n, nrhs):
            raise ValueError(f"x0 must have shape ({n}, {nrhs})")

    matmat = getattr(a, "matmat", None)
    out = BatchGmresResult()

    cols: List[_Column] = []
    for c, b in enumerate(b_cols):
        basis = KrylovBasis(
            n, m, solver.storage, solver._factory, tracer=tracer,
            basis_mode=solver.basis_mode, tile_elems=solver.tile_elems,
            backend=getattr(solver, "backend", None),
        )
        stats = SolveStats(
            n=n,
            nnz=a.nnz,
            bits_per_value=basis.bits_per_value,
            spmv_format=getattr(a, "resolved_format", "csr"),
            spmv_padded_entries=int(getattr(a, "padded_entries", a.nnz)),
            basis_mode=solver.basis_mode,
            basis_tile_elems=basis.tile_elems,
        )
        bnorm = float(np.linalg.norm(b))
        x = np.zeros(n) if x0 is None else np.array(x0[:, c], dtype=np.float64)
        col = _Column(c, b, bnorm, targets[c], x, basis, stats)
        if bnorm == 0.0:
            col.finished = True
            col.result = GmresResult(
                x=np.zeros(n), converged=True, iterations=0, final_rrn=0.0,
                target_rrn=targets[c], storage=solver.storage,
                history=col.history, stats=stats,
            )
        cols.append(col)

    def spmv_block(vectors: "List[np.ndarray]") -> "List[np.ndarray]":
        """One SpMV per vector; multi-vector kernel when available."""
        if matmat is not None and len(vectors) > 1:
            Z = np.empty((n, len(vectors)), order="F")
            for i, z in enumerate(vectors):
                Z[:, i] = z
            with tracer.span("spmv"):
                Y = matmat(Z)
            out.batched_spmv_calls += 1
            return [Y[:, i] for i in range(len(vectors))]
        results = []
        for z in vectors:
            with tracer.span("spmv"):
                results.append(a.matvec(z))
        return results

    def write_slot(writers: "List[_Column]", j: int) -> "List[_Column]":
        """Batched basis write; returns columns needing the solo path."""
        if len(writers) > 1 and write_basis_vectors_batch(
            [c.basis for c in writers], j, [c.v for c in writers]
        ):
            for c in writers:
                c.stats.basis_writes += 1
            out.batched_basis_writes += len(writers)
            return []
        return writers

    # -- lockstep outer loop ------------------------------------------
    while True:
        active = [c for c in cols if not c.finished]
        if not active:
            break

        # -- (re)start: explicit residual -----------------------------
        axs = spmv_block([c.x for c in active])
        entering: List[_Column] = []
        for c, ax in zip(active, axs):
            c.in_cycle = False
            r = c.b - ax
            c.stats.spmv_calls += 1
            c.stats.dense_vector_ops += 2
            beta = float(np.linalg.norm(r))
            if solver.recovery and not np.isfinite(beta):
                if c.recover(
                    BreakdownEvent(c.total_iters, "nonfinite_residual"),
                    solver.max_recoveries,
                ):
                    continue  # re-evaluate the restart next pass
                c.exhausted = True
                c.finished = True
                continue
            c.rrn = beta / c.bnorm
            if c.rrn < c.prev_explicit:
                c.fruitless = 0  # real progress: replenish the budget
            if record_history:
                c.history.append(
                    ResidualSample(c.total_iters, c.rrn, "explicit")
                )
            if c.rrn <= c.target:
                c.converged = True
                c.finished = True
                continue
            if c.total_iters >= solver.max_iter:
                c.finished = True
                continue
            if solver.stall_restarts is not None and c.stats.restarts > 0:
                if c.rrn > c.prev_explicit * solver.stall_factor:
                    c.stagnant += 1
                    if c.stagnant >= solver.stall_restarts:
                        c.stalled = True
                        c.finished = True
                        continue
                else:
                    c.stagnant = 0
            c.prev_explicit = min(c.prev_explicit, c.rrn)

            c.basis.reset()
            c.v = r / beta
            c.lsq = GivensLeastSquares(m, beta)
            c.j_used = 0
            c.poison = None
            c.in_cycle = True
            c.in_step = True
            entering.append(c)

        # slot-0 writes of every entering column, batched when possible
        for c in write_slot(entering, 0):
            c.basis.write_vector(0, c.v)  # storage rejections propagate
            c.stats.basis_writes += 1

        cycle = [c for c in active if c.in_cycle]
        if not cycle:
            continue

        # -- lockstep Arnoldi cycle -----------------------------------
        for j in range(1, m + 1):
            live = [c for c in cycle if c.in_step]
            if not live:
                break
            with tracer.span("arnoldi", j=j, columns=len(live)):
                zs = []
                for c in live:
                    if prec.is_identity:
                        zs.append(c.v)
                    else:
                        zs.append(prec.apply(c.v))
                        c.stats.preconditioner_applies += 1
                ws = spmv_block(zs)
                step: List[_Column] = []
                step_ws: List[np.ndarray] = []
                for c, w in zip(live, ws):
                    c.stats.spmv_calls += 1
                    if solver.recovery and not np.all(np.isfinite(w)):
                        c.poison = BreakdownEvent(c.total_iters, "nonfinite_spmv")
                        c.in_step = False
                    else:
                        step.append(c)
                        step_ws.append(w)
                if not step:
                    continue

                # orthogonalization: the CGS copy (w := np.array(w)) is
                # the fill of the Fortran-ordered block
                with tracer.span("orthogonalize", columns=len(step)):
                    if use_cgs and len(step) > 1:
                        W = np.empty((n, len(step)), order="F")
                        for i, w in enumerate(step_ws):
                            W[:, i] = w
                        oress = _cgs_orthogonalize_batch(
                            [c.basis for c in step], j, W,
                            list(range(len(step))), solver.eta,
                            step[0].basis.tile_elems, tracer,
                        )
                        out.batched_ortho_steps += len(step)
                    else:
                        orthogonalize = (
                            cgs_orthogonalize if use_cgs else mgs_orthogonalize
                        )
                        oress = [
                            orthogonalize(c.basis, j, w, solver.eta)
                            for c, w in zip(step, step_ws)
                        ]
                writers: List[_Column] = []
                for c, ores in zip(step, oress):
                    c.stats.basis_reads += 2 * j if ores.reorthogonalized else j
                    c.stats.reorthogonalizations += int(ores.reorthogonalized)
                    c.stats.dense_vector_ops += 4
                    if solver.recovery and ores.nonfinite:
                        c.poison = BreakdownEvent(
                            c.total_iters, "nonfinite_orthogonalization"
                        )
                        c.in_step = False
                        continue
                    c.total_iters += 1
                    c.stats.iterations += 1
                    impl = c.lsq.append_column(ores.h, ores.h_next) / c.bnorm
                    c.last_impl = impl
                    c.j_used = j
                    if record_history:
                        c.history.append(
                            ResidualSample(c.total_iters, impl, "implicit")
                        )
                    if monitor is not None:
                        monitor(c.idx, c.total_iters, j, c.basis, impl)
                    if ores.breakdown:
                        c.in_step = False  # happy breakdown
                        continue
                    if solver.recovery and ores.loss_of_orthogonality:
                        c.events.append(
                            BreakdownEvent(c.total_iters, "loss_of_orthogonality")
                        )
                        c.in_step = False
                        continue
                    c.v = ores.w / ores.h_next
                    writers.append(c)
                for c in write_slot(writers, j):
                    try:
                        c.basis.write_vector(j, c.v)
                    except (ValueError, OverflowError) as exc:
                        if not solver.recovery:
                            raise
                        c.poison = BreakdownEvent(
                            c.total_iters, "basis_write_failed", str(exc)
                        )
                        c.in_step = False
                        continue
                    c.stats.basis_writes += 1
                for c in writers:
                    if not c.in_step:
                        continue
                    if c.last_impl <= c.target or c.total_iters >= solver.max_iter:
                        c.in_step = False

        # -- per-column solution updates ------------------------------
        for c in cycle:
            if c.poison is not None:
                if not c.recover(c.poison, solver.max_recoveries):
                    c.exhausted = True
                    c.finished = True
                    continue
                if c.j_used == 0:
                    continue  # fault hit before any column was absorbed
            with tracer.span("update", columns=c.j_used):
                y = c.lsq.solve()
                update = c.basis.combine(c.j_used, y)
            if not prec.is_identity:
                update = prec.apply(update)
                c.stats.preconditioner_applies += 1
            if solver.recovery and not np.all(np.isfinite(update)):
                if c.recover(
                    BreakdownEvent(c.total_iters, "nonfinite_update"),
                    solver.max_recoveries,
                ):
                    continue
                c.exhausted = True
                c.finished = True
                continue
            c.x = c.x + update
            c.stats.basis_reads += c.j_used
            c.stats.dense_vector_ops += 1
            c.stats.restarts += 1

    # -- final verification (batched over every solved column) --------
    pending = [c for c in cols if c.result is None]
    if pending:
        final_axs = spmv_block([c.x for c in pending])
        for c, final_ax in zip(pending, final_axs):
            final_rrn = float(np.linalg.norm(c.b - final_ax) / c.bnorm)
            c.stats.spmv_calls += 1
            if solver.recovery and not np.isfinite(final_rrn):
                c.events.append(
                    BreakdownEvent(c.total_iters, "nonfinite_residual")
                )
                final_rrn = (
                    c.rrn if np.isfinite(c.rrn) else float(c.prev_explicit)
                )
            c.stats.bits_per_value = c.basis.bits_per_value
            c.stats.basis_peak_float64_bytes = c.basis.peak_float64_bytes
            flog = c.basis.fused_log
            c.stats.fused_dot_calls = flog.dot_calls
            c.stats.fused_dot_vectors = flog.dot_vectors
            c.stats.fused_axpy_calls = flog.axpy_calls
            c.stats.fused_axpy_vectors = flog.axpy_vectors
            c.stats.fused_combine_calls = flog.combine_calls
            c.stats.fused_combine_vectors = flog.combine_vectors
            c.stats.fused_tiles = flog.tiles
            c.stats.fused_values = flog.values
            c.result = GmresResult(
                x=c.x,
                converged=c.converged,
                iterations=c.total_iters,
                final_rrn=final_rrn,
                target_rrn=c.target,
                storage=solver.storage,
                history=c.history,
                stats=c.stats,
                stalled=c.stalled,
                breakdown_events=c.events,
                recovery_exhausted=c.exhausted,
            )

    out.results = [c.result for c in cols]
    return out
