"""Target-accuracy calibration (paper Section V-C).

"Some problems are inherently difficult to solve, so we adjust our
target accuracy for each problem.  For this, we solve each problem with
20,000 iterations of a standard double-precision GMRES.  The solution
accuracy achieved is then used with some wiggle room as the stopping
criterion for the CB-GMRES variants."

Our synthetic analogs run at different scales than the SuiteSparse
originals, so the registry targets were produced with exactly this
procedure; this module lets users (and the Table I bench) rerun it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..sparse.csr import CSRMatrix
from ..sparse.suite import SUITE, resolve_scale, suite_names
from .gmres import CbGmres
from .problems import make_problem, make_rhs

__all__ = ["CalibrationResult", "calibrate_target", "calibrate_suite"]

#: multiplicative slack on the achieved RRN ("some wiggle room")
DEFAULT_WIGGLE = 2.0


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of a float64 calibration run."""

    name: str
    achieved_rrn: float
    target_rrn: float
    iterations: int


def calibrate_target(
    a: CSRMatrix,
    b,
    max_iter: int = 20_000,
    wiggle: float = DEFAULT_WIGGLE,
    m: int = 100,
    name: str = "matrix",
) -> CalibrationResult:
    """Run the paper's calibration: long float64 solve, relaxed target.

    The float64 reference runs with ``target_rrn = 0`` (it can never be
    satisfied) until ``max_iter``; the final explicit RRN times
    ``wiggle`` becomes the benchmark target.
    """
    solver = CbGmres(a, storage="float64", m=m, max_iter=max_iter, stall_restarts=None)
    result = solver.solve(b, target_rrn=0.0, record_history=False)
    achieved = result.final_rrn
    return CalibrationResult(
        name=name,
        achieved_rrn=achieved,
        target_rrn=achieved * wiggle,
        iterations=result.iterations,
    )


def calibrate_suite(
    scale: Optional[str] = None,
    max_iter: int = 2_000,
    wiggle: float = DEFAULT_WIGGLE,
) -> Dict[str, CalibrationResult]:
    """Calibrate every Table I analog at the given scale.

    ``max_iter`` defaults far below the paper's 20,000 because the
    analogs are smaller and reach their attainable accuracy much sooner.
    """
    scale = resolve_scale(scale)
    out: Dict[str, CalibrationResult] = {}
    for name in suite_names():
        problem = make_problem(name, scale)
        out[name] = calibrate_target(
            problem.a, problem.b, max_iter=max_iter, wiggle=wiggle, name=name
        )
    return out
