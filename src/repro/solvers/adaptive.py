"""Adaptive per-restart precision control for the compressed basis.

CB-GMRES (Aliaga et al., PAPERS.md) stores the Krylov basis lossily
because the solver only needs the *search directions* preserved — and
how well they must be preserved changes over the solve.  The empirical
rule this module is built on (measured on this repo's own bench grid,
see ``docs/PRECISION.md``) is the restart-cycle form of the Fox et al.
error-bound analysis:

    one restart cycle whose basis is stored with unit roundoff ``u``
    cannot reduce the explicit residual by more than a small multiple
    of ``u`` relative to the residual it started from.

A cycle therefore only needs enough precision to cover the residual
reduction it is *actually going to deliver*.  Two quantities bound that
delivery:

* the convergence rate: the per-cycle reduction factor ``g`` observed on
  previous (storage-uncapped) cycles, and
* the finish line: once the target is closer than one cycle's worth of
  progress, the cycle only needs to reduce by ``tau / rho`` — near
  convergence the *required* per-cycle reduction shrinks, so the final
  cycles tolerate the cheapest formats.

The controller picks, per restart, the cheapest ladder format whose
roundoff (times a safety factor) fits inside
``max(g_predicted, tau / rho)``, then lets feedback veto it: a cycle
whose observed reduction was storage-capped, that tripped the CGS/MGS
re-orthogonalization machinery, that lost orthogonality outright, or
that needed a fault recovery, forces an upshift that is *held* for a
few restarts so the controller cannot oscillate.  External floors
(:meth:`PrecisionController.raise_floor`) encode the composition rule
with :mod:`repro.robust`: once the fault-escalation chain has moved past
a format, the controller never goes back below it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "ADAPTIVE_STORAGE",
    "DEFAULT_LADDER",
    "STORAGE_UNIT_ROUNDOFF",
    "storage_unit_roundoff",
    "ControllerConfig",
    "CycleFeedback",
    "PrecisionDecision",
    "PrecisionController",
]

#: the pseudo storage-format name that enables the controller
ADAPTIVE_STORAGE = "adaptive"

#: cheapest-to-safest storage ladder the controller walks (matches the
#: fault-escalation chain of :data:`repro.robust.fallback.DEFAULT_CHAIN`
#: so floors translate one-to-one)
DEFAULT_LADDER: Tuple[str, ...] = ("frsz2_16", "frsz2_32", "float64")

#: pointwise unit roundoff of each storage format: FRSZ2 keeps an
#: ``N-1``-bit fixed-point mantissa against a block-shared exponent
#: (relative error ``2**-(N-1)`` — paper Section IV-A), IEEE formats
#: round to ``2**-(p)`` with ``p`` explicit mantissa bits
STORAGE_UNIT_ROUNDOFF: Dict[str, float] = {
    "frsz2_16": 2.0 ** -15,
    "frsz2_32": 2.0 ** -31,
    "float16": 2.0 ** -11,
    "float32": 2.0 ** -24,
    "float64": 2.0 ** -53,
}


def storage_unit_roundoff(storage: str) -> float:
    """Pointwise relative roundoff of a storage format.

    Parameters
    ----------
    storage : str
        A format name.  ``frsz2_N`` resolves to ``2**-(N-1)`` even for
        widths not in the precomputed table.

    Returns
    -------
    float
        The unit roundoff ``u`` such that storing a value ``x`` yields
        ``x (1 + delta)`` with ``|delta| <= u`` (up to the block-shared
        exponent loss FRSZ2 adds for small-magnitude values).

    Raises
    ------
    KeyError
        For names that are neither tabulated nor ``frsz2_N``.
    """
    if storage in STORAGE_UNIT_ROUNDOFF:
        return STORAGE_UNIT_ROUNDOFF[storage]
    if storage.startswith("frsz2_"):
        bits = int(storage.split("_", 1)[1])
        return 2.0 ** -(bits - 1)
    raise KeyError(storage)


@dataclass(frozen=True)
class ControllerConfig:
    """Tuning knobs of the :class:`PrecisionController`.

    Attributes
    ----------
    ladder : tuple of str
        Storage formats from cheapest to safest.  Must be ordered by
        decreasing unit roundoff.
    safety : float
        Headroom multiplier on the error-bound test: format ``f`` is
        admissible for a cycle needing reduction ``g`` only if
        ``u(f) * safety <= g``.  Larger is more conservative.
    prior_gain : float
        Per-cycle reduction factor assumed before any cycle has been
        observed.  The default (``1e-8``) reflects that first cycles on
        well-behaved systems gain many decades, which admits
        ``frsz2_32`` but not ``frsz2_16`` — the paper's own default.
    reorth_fraction : float
        Feedback-upshift trigger: a cycle where at least this fraction
        of the Arnoldi steps needed re-orthogonalization (the CGS/MGS
        eta test) *and* the fraction jumped by ``reorth_jump`` over the
        solve's own best cycle is deemed to be eroding the directions,
        and the next cycle runs one rung higher.  The jump term makes
        the signal relative: some matrices re-orthogonalize every step
        even in float64, which says nothing about the storage.
    reorth_jump : float
        Minimum increase over the lowest re-orthogonalization fraction
        seen so far before the ``reorth_fraction`` trigger arms.
    stall_gain : float
        A cycle whose reduction factor is above this (i.e. essentially
        no progress) triggers a feedback upshift.
    cap_margin : float
        A cycle counts as *storage-capped* when its observed reduction
        factor lands within this multiple of the format's unit
        roundoff — the cycle hit the error-model wall, so its gain says
        more about the format than about the matrix.
    hold_restarts : int
        How many subsequent restart decisions a feedback-driven upshift
        is held for, preventing downshift/upshift oscillation.
    floor : str, optional
        Initial escalation floor: the controller starts with every
        ladder rung below this format forbidden (equivalent to calling
        :meth:`PrecisionController.raise_floor` right after
        construction).  :class:`repro.robust.RobustCbGmres` uses this
        to re-run adaptive attempts with a raised floor after a
        fault-driven escalation.
    """

    ladder: Tuple[str, ...] = DEFAULT_LADDER
    safety: float = 4.0
    prior_gain: float = 1e-8
    reorth_fraction: float = 0.5
    reorth_jump: float = 0.25
    stall_gain: float = 0.999
    cap_margin: float = 32.0
    hold_restarts: int = 2
    floor: Optional[str] = None

    def __post_init__(self) -> None:
        if len(self.ladder) < 1:
            raise ValueError("ladder must name at least one storage format")
        us = [storage_unit_roundoff(f) for f in self.ladder]
        if any(a <= b for a, b in zip(us, us[1:])):
            raise ValueError(
                "ladder must be ordered cheapest (largest roundoff) to "
                f"safest: {self.ladder}"
            )
        if self.safety < 1.0:
            raise ValueError("safety must be >= 1")
        if not 0.0 < self.prior_gain < 1.0:
            raise ValueError("prior_gain must be in (0, 1)")
        if self.hold_restarts < 0:
            raise ValueError("hold_restarts must be non-negative")
        if self.floor is not None and self.floor not in self.ladder:
            raise ValueError(
                f"floor {self.floor!r} is not on the ladder {self.ladder}"
            )


@dataclass(frozen=True)
class CycleFeedback:
    """What one finished restart cycle tells the controller.

    Attributes
    ----------
    storage : str
        Format the cycle's basis was stored in.
    start_rrn, end_rrn : float
        Explicit relative residual at the cycle's start and end; their
        ratio is the observed per-cycle reduction factor.
    iterations : int
        Arnoldi steps the cycle ran.
    reorthogonalizations : int
        Steps whose eta test forced a second orthogonalization pass.
    loss_of_orthogonality : bool
        The cycle ended on a hard re-orthogonalization failure.
    recoveries : int
        Poisoned-cycle recoveries charged during the cycle (faults).
    """

    storage: str
    start_rrn: float
    end_rrn: float
    iterations: int
    reorthogonalizations: int = 0
    loss_of_orthogonality: bool = False
    recoveries: int = 0


@dataclass(frozen=True)
class PrecisionDecision:
    """One per-restart storage decision.

    Attributes
    ----------
    restart : int
        Restart-cycle index the decision applies to.
    storage : str
        Chosen format.
    rrn : float
        Explicit relative residual at decision time.
    needed_gain : float
        The per-cycle reduction the cycle was budgeted for
        (``max(g_predicted, tau / rho)``).
    reason : str
        ``"error-bound"`` (the rule picked it), ``"feedback-hold"``
        (an upshift hold overrode a cheaper admissible pick), or
        ``"floor"`` (an external escalation floor overrode it).
    """

    restart: int
    storage: str
    rrn: float
    needed_gain: float
    reason: str


class PrecisionController:
    """Chooses the basis storage format for each restart cycle.

    One controller instance serves one solve: it is stateful (observed
    convergence rate, upshift holds, escalation floors) and is
    consulted once per restart via :meth:`decide`, fed once per
    *finished* cycle via :meth:`observe_cycle`.

    Parameters
    ----------
    config : ControllerConfig, optional
        Tuning knobs; defaults are calibrated on the repo bench grid.
    tracer : repro.observe.Tracer, optional
        Decisions are surfaced as ``precision.*`` counters
        (``precision.restarts.<fmt>``, ``precision.upshifts``,
        ``precision.downshifts``, ``precision.floor_clamps``).

    Examples
    --------
    >>> c = PrecisionController()
    >>> c.decide(rrn=1.0, target_rrn=1e-12).storage
    'frsz2_32'
    >>> c.observe_cycle(CycleFeedback("frsz2_32", 1.0, 1e-4, 50))
    >>> c.decide(rrn=1e-4, target_rrn=1e-12).storage
    'frsz2_16'
    """

    def __init__(self, config: Optional[ControllerConfig] = None, tracer=None) -> None:
        from ..observe import NULL_TRACER

        self.config = config or ControllerConfig()
        self.tracer = tracer or NULL_TRACER
        self._gain_pred: Optional[float] = None
        self._reorth_ref: Optional[float] = None
        self._floor_idx = 0
        self._hold_idx = 0
        self._hold_left = 0
        self._restart = 0
        self._last_idx: Optional[int] = None
        #: every decision taken, in order (the bench trace)
        self.decisions: List[PrecisionDecision] = []
        self.upshifts = 0
        self.downshifts = 0
        if self.config.floor is not None:
            self.raise_floor(self.config.floor)

    # -- escalation composition ---------------------------------------

    def raise_floor(self, storage: str) -> None:
        """Forbid every ladder rung below ``storage`` from now on.

        This is the composition contract with :mod:`repro.robust`:
        when the fault-escalation chain has moved past a format, the
        controller must never downshift back below it, no matter what
        the error-bound rule would admit.  Unknown (off-ladder) names
        raise ``ValueError``; raising to a level at or below the
        current floor is a no-op.
        """
        if storage not in self.config.ladder:
            raise ValueError(
                f"floor {storage!r} is not on the ladder {self.config.ladder}"
            )
        self._floor_idx = max(self._floor_idx, self.config.ladder.index(storage))

    @property
    def floor(self) -> str:
        """The lowest format the controller may currently choose."""
        return self.config.ladder[self._floor_idx]

    # -- feedback ------------------------------------------------------

    def observe_cycle(self, fb: CycleFeedback) -> None:
        """Fold one finished cycle into the controller state.

        Updates the convergence-rate estimate from the cycle's observed
        reduction factor (only when the cycle was *not* storage-capped:
        a capped cycle's gain says more about the format than the
        matrix) and arms a held upshift when the cycle showed storage
        distress — a capped reduction, heavy re-orthogonalization, an
        outright loss of orthogonality, a stall, or fault recoveries.
        """
        cfg = self.config
        try:
            idx = cfg.ladder.index(fb.storage)
        except ValueError:
            idx = len(cfg.ladder) - 1
        u = storage_unit_roundoff(fb.storage)
        g_obs: Optional[float] = None
        if fb.start_rrn > 0 and fb.end_rrn >= 0:
            ratio = fb.end_rrn / fb.start_rrn
            if ratio == ratio and ratio != float("inf"):  # finite
                g_obs = ratio
        capped = g_obs is None or g_obs <= cfg.cap_margin * u
        stalled = g_obs is None or g_obs >= cfg.stall_gain
        frac = (
            fb.reorthogonalizations / fb.iterations if fb.iterations > 0 else None
        )
        heavy_reorth = (
            frac is not None
            and self._reorth_ref is not None
            and frac >= cfg.reorth_fraction
            and frac >= self._reorth_ref + cfg.reorth_jump
        )
        if frac is not None:
            self._reorth_ref = (
                frac if self._reorth_ref is None else min(self._reorth_ref, frac)
            )
        if g_obs is not None and not capped:
            self._gain_pred = g_obs
        distress = (
            capped
            or stalled
            or heavy_reorth
            or fb.loss_of_orthogonality
            or fb.recoveries > 0
        )
        if distress and idx + 1 < len(cfg.ladder):
            self._hold_idx = max(self._hold_idx, idx + 1)
            self._hold_left = cfg.hold_restarts
            if self.tracer.enabled:
                self.tracer.count("precision.distress")

    # -- decisions -----------------------------------------------------

    def decide(self, rrn: float, target_rrn: float) -> PrecisionDecision:
        """Pick the storage format for the restart cycle starting now.

        Parameters
        ----------
        rrn : float
            Explicit relative residual at the restart.
        target_rrn : float
            The solve's convergence target.

        Returns
        -------
        PrecisionDecision
            The chosen format plus the budgeted per-cycle reduction and
            the reason it won.  The decision is appended to
            :attr:`decisions` and mirrored into ``precision.*``
            tracer counters.
        """
        cfg = self.config
        g_pred = self._gain_pred if self._gain_pred is not None else cfg.prior_gain
        finish = target_rrn / rrn if rrn > 0 else 1.0
        needed = max(g_pred, min(finish, 1.0))
        idx = len(cfg.ladder) - 1
        for i, fmt in enumerate(cfg.ladder):
            if storage_unit_roundoff(fmt) * cfg.safety <= needed:
                idx = i
                break
        reason = "error-bound"
        if self._hold_left > 0:
            # a held upshift yields when the finish line alone admits
            # the cheaper pick: the remaining distance fits inside one
            # cycle at that format, so distress cannot cost iterations
            closes_out = (
                storage_unit_roundoff(cfg.ladder[idx]) * cfg.safety <= finish
            )
            if self._hold_idx > idx and not closes_out:
                idx = self._hold_idx
                reason = "feedback-hold"
            self._hold_left -= 1
        if self._floor_idx > idx:
            idx = self._floor_idx
            reason = "floor"
            if self.tracer.enabled:
                self.tracer.count("precision.floor_clamps")
        storage = cfg.ladder[idx]
        decision = PrecisionDecision(
            restart=self._restart,
            storage=storage,
            rrn=float(rrn),
            needed_gain=float(needed),
            reason=reason,
        )
        self.decisions.append(decision)
        if self._last_idx is not None:
            if idx > self._last_idx:
                self.upshifts += 1
                if self.tracer.enabled:
                    self.tracer.count("precision.upshifts")
            elif idx < self._last_idx:
                self.downshifts += 1
                if self.tracer.enabled:
                    self.tracer.count("precision.downshifts")
        if self.tracer.enabled:
            self.tracer.count(f"precision.restarts.{storage}")
        self._last_idx = idx
        self._restart += 1
        return decision

    @property
    def storage_trace(self) -> List[str]:
        """The storage format chosen at each restart, in order."""
        return [d.storage for d in self.decisions]
