"""Storage-format prediction — the paper's future-work feature (§VIII).

"We need an accurate, robust, and fast method to predict when an
application will benefit from FRSZ2 compared to mixed-precision
methods... features such as the condition number, value distribution,
exponent distribution, and even autotuned methods that detect and
observe the convergence per unit time of several candidate methods."

This module implements both ingredients the paper sketches:

* **static features** of the initial residual and matrix — the
  per-block exponent spread (FRSZ2's failure mode: blocks whose shared
  e_max wipes out small members) and the dynamic range relative to
  float16's representable window;
* **speculative probing** — run one short restart cycle per candidate
  format, divide the observed residual reduction by the *modeled* cycle
  time on the target device, and pick the best convergence per second,
  "applied just before the first restart".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from ..core.ieee754 import effective_biased_exponent, significand53, to_bits
from ..gpu.device import DeviceSpec, H100_PCIE
from ..gpu.timing import GmresTimingModel
from ..sparse.csr import CSRMatrix
from .gmres import CbGmres

__all__ = [
    "BasisRiskFeatures",
    "FormatRecommendation",
    "exponent_spread_features",
    "predict_format",
]

#: candidate formats ranked by the predictor, best storage first
DEFAULT_CANDIDATES = ("frsz2_32", "float32", "float16", "float64")

#: block exponent spread (binades) beyond which an frsz2_32 field loses
#: every significand bit (l - 2 = 30)
_FRSZ2_KILL_SPREAD = 30
#: relative magnitude below which float16 cannot represent a value next
#: to O(1) neighbours (subnormal floor ~ 2^-24)
_FLOAT16_FLOOR = 2.0 ** -24


@dataclass(frozen=True)
class BasisRiskFeatures:
    """Static features of a prospective Krylov vector."""

    #: fraction of BS-blocks whose exponent spread zeroes frsz2 members
    frsz2_kill_fraction: float
    #: fraction of values float16 flushes to (near) zero after scaling
    float16_loss_fraction: float
    #: number of distinct exponents covering 90% of the values
    exponent_concentration: int


def exponent_spread_features(v: np.ndarray, block_size: int = 32) -> BasisRiskFeatures:
    """Compute the exponent-distribution features of one vector."""
    v = np.asarray(v, dtype=np.float64)
    n = v.size
    if n == 0:
        return BasisRiskFeatures(0.0, 0.0, 0)
    bits = to_bits(np.abs(v))
    e = effective_biased_exponent(bits).astype(np.int64)
    nonzero = significand53(bits) != 0
    nb = -(-n // block_size)
    pad_e = np.full(nb * block_size, np.iinfo(np.int64).min)
    pad_e[:n] = np.where(nonzero, e, np.iinfo(np.int64).min)
    eb = pad_e.reshape(nb, block_size)
    emax = eb.max(axis=1)
    # a block member is killed when emax - e > l-2
    killed = (emax[:, None] - eb > _FRSZ2_KILL_SPREAD) & (eb > np.iinfo(np.int64).min)
    kill_frac = float(killed.any(axis=1).mean())
    scale = np.abs(v).max()
    if scale > 0:
        f16_loss = float(np.mean((np.abs(v) < scale * _FLOAT16_FLOOR) & (v != 0)))
    else:
        f16_loss = 0.0
    vals, counts = np.unique(e[nonzero], return_counts=True)
    order = np.argsort(counts)[::-1]
    cum = np.cumsum(counts[order]) / max(counts.sum(), 1)
    concentration = int(np.searchsorted(cum, 0.9) + 1) if vals.size else 0
    return BasisRiskFeatures(
        frsz2_kill_fraction=kill_frac,
        float16_loss_fraction=f16_loss,
        exponent_concentration=concentration,
    )


@dataclass
class FormatRecommendation:
    """Outcome of the prediction."""

    storage: str
    features: BasisRiskFeatures
    #: convergence-per-modeled-second score per probed candidate
    probe_scores: Dict[str, float] = field(default_factory=dict)
    #: candidates rejected by the static features, with reasons
    rejected: Dict[str, str] = field(default_factory=dict)


def predict_format(
    a: CSRMatrix,
    b: np.ndarray,
    candidates: Sequence[str] = DEFAULT_CANDIDATES,
    device: DeviceSpec = H100_PCIE,
    probe_iterations: int = 30,
    target_rrn: float = 0.0,
    kill_threshold: float = 0.05,
    f16_threshold: float = 0.01,
) -> FormatRecommendation:
    """Recommend a Krylov-basis storage format for ``A x = b``.

    Static screening first: formats whose failure signature appears in
    the initial residual are dropped.  The survivors are probed with one
    short cycle each (``probe_iterations``), and the winner maximizes
    observed residual reduction per modeled device second — the paper's
    "convergence per unit time of several candidate methods".
    """
    b = np.asarray(b, dtype=np.float64)
    bnorm = float(np.linalg.norm(b))
    if bnorm == 0.0:
        feats = exponent_spread_features(b)
        return FormatRecommendation(storage="float64", features=feats)
    v0 = b / bnorm
    feats = exponent_spread_features(v0)

    rejected: Dict[str, str] = {}
    survivors = []
    for fmt in candidates:
        if fmt.startswith("frsz2") and feats.frsz2_kill_fraction > kill_threshold:
            rejected[fmt] = (
                f"{feats.frsz2_kill_fraction:.0%} of blocks mix exponents "
                f"beyond {_FRSZ2_KILL_SPREAD} binades"
            )
        elif fmt == "float16" and feats.float16_loss_fraction > f16_threshold:
            rejected[fmt] = (
                f"{feats.float16_loss_fraction:.0%} of values fall below "
                "float16's relative range"
            )
        else:
            survivors.append(fmt)
    if not survivors:
        survivors = ["float64"]

    model = GmresTimingModel(device)
    scores: Dict[str, float] = {}
    for fmt in survivors:
        solver = CbGmres(
            a, fmt, m=probe_iterations, max_iter=probe_iterations, stall_restarts=None
        )
        res = solver.solve(b, target_rrn=target_rrn, record_history=False)
        reduction = -math.log10(max(res.final_rrn, 1e-300))
        seconds = model.time_result(res).total_seconds
        scores[fmt] = reduction / seconds if seconds > 0 else 0.0

    best = max(scores, key=scores.get)
    return FormatRecommendation(
        storage=best, features=feats, probe_scores=scores, rejected=rejected
    )
