"""Numerical analysis instrumentation for CB-GMRES.

Tools for observing *why* a storage format behaves the way it does, built
on the solver's monitor hook:

* orthogonality decay — ``||V_j^T V_j - I||_max`` of the lossy stored
  basis over the Arnoldi process.  Storing the basis compressed perturbs
  exactly this quantity, and its growth rate is what separates the
  formats in Figs. 8/9 (re-orthogonalization fights it; restarts reset
  it);
* basis perturbation — the per-vector compression error
  ``||v_stored - v_exact||`` injected at each write, measured on the
  format directly.

Both quantities are measured without changing the solve: the monitor
only reads the live basis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..sparse.csr import CSRMatrix
from .gmres import CbGmres, GmresResult

__all__ = ["OrthogonalityTrace", "trace_orthogonality", "basis_perturbation"]


@dataclass
class OrthogonalityTrace:
    """Orthogonality-loss measurements of one instrumented solve."""

    storage: str
    iterations: List[int] = field(default_factory=list)
    #: max |v_i . v_j| over i != j within the current cycle's basis
    max_cross: List[float] = field(default_factory=list)
    #: max |1 - ||v_j||| over the current cycle's basis
    norm_drift: List[float] = field(default_factory=list)
    result: Optional[GmresResult] = None

    @property
    def worst_orthogonality(self) -> float:
        return max(self.max_cross) if self.max_cross else 0.0

    @property
    def worst_norm_drift(self) -> float:
        return max(self.norm_drift) if self.norm_drift else 0.0


def trace_orthogonality(
    a: CSRMatrix,
    b: np.ndarray,
    storage: str,
    target_rrn: float,
    sample_every: int = 5,
    **solver_kwargs,
) -> OrthogonalityTrace:
    """Run CB-GMRES while recording the stored basis's orthogonality.

    ``sample_every`` limits the O(j^2 n) Gram-matrix evaluations to
    every k-th iteration.
    """
    trace = OrthogonalityTrace(storage=storage)

    def monitor(iteration: int, j: int, basis, impl: float) -> None:
        if iteration % sample_every:
            return
        v = basis.matrix(j)  # the decompressed (lossy) stored basis
        gram = v.T @ v
        off = gram - np.eye(j)
        diag = np.abs(np.diag(off)).max() if j else 0.0
        np.fill_diagonal(off, 0.0)
        trace.iterations.append(iteration)
        trace.max_cross.append(float(np.abs(off).max()) if j > 1 else 0.0)
        trace.norm_drift.append(float(diag))

    solver = CbGmres(a, storage, **solver_kwargs)
    trace.result = solver.solve(b, target_rrn, monitor=monitor)
    return trace


def basis_perturbation(storage: str, v: np.ndarray) -> float:
    """2-norm of the error a storage format injects into one unit vector.

    The direct measurement behind the Fig. 8 ordering: per-write basis
    perturbation is ~1e-10 (frsz2_32), ~6e-8 (float32), ~1e-3 (float16)
    on normalized Krylov data.
    """
    from ..accessor import make_accessor

    v = np.asarray(v, dtype=np.float64)
    acc = make_accessor(storage, v.size)
    acc.write(v)
    return float(np.linalg.norm(acc.read() - v))
