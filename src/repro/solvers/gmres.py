"""Restarted CB-GMRES with a compressed Krylov basis (paper Fig. 1).

The solver follows the paper's algorithmic formulation exactly:

* classical Gram-Schmidt with conditional re-orthogonalization
  (``eta``-test against the pre-orthogonalization norm);
* incremental Givens least squares giving the *implicit* residual norm
  every iteration; the *explicit* residual is recomputed only at each
  restart — producing the correction jumps of Fig. 9a;
* restart length ``m = 100`` (paper Section V-B), initial guess
  ``x0 = 0``, stopping criterion ``||b - A x|| <= target_rrn * ||b||``;
* the Krylov basis lives behind the Accessor in a reduced storage
  format (float64/float32/float16/frsz2_*/Table-II round trips); the
  newest vector is kept in double precision for the SpMV of the next
  iteration, matching Ginkgo's CB-GMRES.

The paper's own experiments run unpreconditioned (Section V-C: "We do
not use any preconditioner to not blur the numerical impact") and that
remains the default here, but the iteration is right-preconditioned:
pass ``preconditioner=`` (see :mod:`repro.solvers.preconditioner`, or
``make_preconditioner`` for the CLI names) to solve ``A M^-1 u = b``
with ``x = M^-1 u``.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from ..accessor import VectorAccessor
from ..jit import dispatch as _dispatch
from ..observe import NULL_TRACER
from ..sparse.csr import CSRMatrix
from ..sparse.engine import SPMV_FORMATS, SpmvEngine
from ..fused import DEFAULT_TILE_ELEMS
from .adaptive import (
    ADAPTIVE_STORAGE,
    ControllerConfig,
    CycleFeedback,
    PrecisionController,
    PrecisionDecision,
)
from .basis import BASIS_MODES, KrylovBasis
from .hessenberg import GivensLeastSquares
from .orthogonal import DEFAULT_ETA, cgs_orthogonalize, mgs_orthogonalize
from .preconditioner import IdentityPreconditioner, Preconditioner

__all__ = [
    "ResidualSample",
    "BreakdownEvent",
    "SolveStats",
    "GmresResult",
    "CbGmres",
]

#: paper default restart length
DEFAULT_RESTART = 100
#: paper default iteration cap (Section V-C calibration runs)
DEFAULT_MAX_ITER = 20_000
#: default bound on poisoned-cycle recoveries before the solve gives up
DEFAULT_MAX_RECOVERIES = 10


@dataclass(frozen=True)
class ResidualSample:
    """One point of the convergence history."""

    iteration: int
    rrn: float
    #: "implicit" (Givens estimate) or "explicit" (recomputed at restart)
    kind: str


@dataclass(frozen=True)
class BreakdownEvent:
    """One detected Arnoldi breakdown or poisoned cycle.

    ``kind`` is one of ``"nonfinite_spmv"`` (NaN/Inf out of the matvec),
    ``"nonfinite_orthogonalization"`` (corrupted basis contaminated the
    Hessenberg column), ``"nonfinite_update"`` (the solution update
    itself was poisoned), ``"nonfinite_residual"`` (the restart residual
    came back non-finite), ``"basis_write_failed"`` (the storage format
    rejected the vector), or ``"loss_of_orthogonality"`` (the
    re-orthogonalization pass failed the eta test again).
    """

    iteration: int
    kind: str
    detail: str = ""


@dataclass
class SolveStats:
    """Work log consumed by the GPU timing model (Fig. 11).

    ``basis_reads``/``basis_writes`` count *vector touches* of the
    compressed Krylov basis: orthogonalizing iteration ``j`` reads ``j``
    stored vectors (twice when re-orthogonalized) and writes one; the
    solution update reads ``j`` vectors.  Together with ``n``,
    ``bits_per_value`` and the SpMV log this determines the bytes a GPU
    implementation moves.
    """

    n: int = 0
    nnz: int = 0
    bits_per_value: float = 64.0
    iterations: int = 0
    restarts: int = 0
    spmv_calls: int = 0
    basis_reads: int = 0
    basis_writes: int = 0
    dense_vector_ops: int = 0
    reorthogonalizations: int = 0
    preconditioner_applies: int = 0
    #: basis-vector reads that bypass compression (FGMRES's V basis)
    uncompressed_basis_reads: int = 0
    #: poisoned Arnoldi cycles discarded and restarted (fault tolerance)
    recoveries: int = 0
    #: storage format the SpMV kernel executed in ("csr"/"ell"/"sell")
    spmv_format: str = "csr"
    #: stored slots of that layout including padding (``nnz`` for CSR)
    spmv_padded_entries: int = 0
    #: basis kernel structure: "cached" (materialized) or "streaming"
    basis_mode: str = "cached"
    #: fused-kernel tile size in elements (after granularity rounding)
    basis_tile_elems: int = 0
    #: largest float64 working set the basis held during the solve
    basis_peak_float64_bytes: int = 0
    #: fused-kernel work log (feeds the modeled fused-kernel time):
    #: calls and stored-vector operands of each fused primitive, plus
    #: the total decoded tiles/values streamed through scratch
    fused_dot_calls: int = 0
    fused_dot_vectors: int = 0
    fused_axpy_calls: int = 0
    fused_axpy_vectors: int = 0
    fused_combine_calls: int = 0
    fused_combine_vectors: int = 0
    fused_tiles: int = 0
    fused_values: int = 0
    #: adaptive precision (``storage="adaptive"``): the format each
    #: restart cycle's basis was stored in, in restart order — empty for
    #: fixed-storage solves
    storage_trace: List[str] = field(default_factory=list)
    #: adaptive precision: ``basis_reads`` split by the storage format
    #: the touched vectors were stored in (the timing model prices each
    #: bucket at its own width); empty for fixed-storage solves
    reads_by_storage: Dict[str, int] = field(default_factory=dict)
    #: adaptive precision: ``basis_writes`` split by storage format
    writes_by_storage: Dict[str, int] = field(default_factory=dict)
    #: controller decisions that moved up/down the precision ladder
    precision_upshifts: int = 0
    precision_downshifts: int = 0


@dataclass
class GmresResult:
    """Outcome of a CB-GMRES solve."""

    x: np.ndarray
    converged: bool
    iterations: int
    final_rrn: float
    target_rrn: float
    storage: str
    history: List[ResidualSample] = field(default_factory=list)
    stats: SolveStats = field(default_factory=SolveStats)
    stalled: bool = False
    #: every breakdown/fault detected during the solve (empty = clean run)
    breakdown_events: List[BreakdownEvent] = field(default_factory=list)
    #: the recovery budget ran out before the solve could finish
    recovery_exhausted: bool = False
    #: adaptive precision: one :class:`~repro.solvers.adaptive.
    #: PrecisionDecision` per restart cycle (empty for fixed storage)
    precision_trace: List[PrecisionDecision] = field(default_factory=list)

    @property
    def recoveries(self) -> int:
        """Poisoned cycles that were discarded and restarted."""
        return self.stats.recoveries

    def history_arrays(self, kind: Optional[str] = None):
        """(iterations, rrns) arrays, optionally filtered by sample kind."""
        samples = [s for s in self.history if kind is None or s.kind == kind]
        its = np.array([s.iteration for s in samples], dtype=np.int64)
        rrns = np.array([s.rrn for s in samples])
        return its, rrns


class CbGmres:
    """Compressed-basis restarted GMRES.

    Parameters
    ----------
    a:
        System matrix (CSR).
    storage:
        Krylov-basis storage format name (see
        :func:`repro.accessor.list_storage_formats`).
    m:
        Restart length (paper: 100).
    eta:
        Re-orthogonalization threshold of Fig. 1.
    max_iter:
        Global iteration cap (paper: 20,000).
    stall_restarts:
        Optional early exit: if this many consecutive restarts fail to
        improve the explicit residual by ``stall_factor``, the solve is
        declared stalled (saves the full 20k iterations on hopeless
        format/problem combinations like float16 on PR02R; ``None``
        reproduces the paper's run-to-the-cap behaviour).
    accessor_factory:
        Override the storage factory (ablation studies: custom block
        sizes, rounding modes).
    preconditioner:
        Right preconditioner ``M`` (the ``M^-1`` of Fig. 1); default is
        the identity, matching the paper's experiments (Section V-C).
    orthogonalization:
        ``"cgs"`` (Fig. 1: classical Gram-Schmidt + conditional
        re-orthogonalization, Ginkgo's choice) or ``"mgs"`` (modified
        Gram-Schmidt, for numerical comparisons).
    spmv_format:
        SpMV storage format: ``"csr"`` (default) runs the matrix as
        given — bit-identical to the pre-engine solver; ``"ell"`` /
        ``"sell"`` force that layout; ``"auto"`` lets
        :func:`repro.sparse.engine.choose_format` pick from the row
        statistics.  Anything but ``"csr"`` wraps ``a`` in a
        :class:`~repro.sparse.engine.SpmvEngine` and therefore requires
        a plain :class:`~repro.sparse.csr.CSRMatrix` (pass a
        pre-built engine — or wrap decorators such as fault injectors
        *around* one — to combine the two).
    recovery:
        When True (default), NaN/Inf escaping the Arnoldi loop — from a
        faulty SpMV, a corrupted stored basis vector, or a poisoned
        orthogonalization — ends the cycle at the fault: Hessenberg
        columns absorbed *before* the fault are salvaged into a partial
        solution update, the poisoned tail is discarded, and the next
        cycle restarts from a fresh explicit residual instead of
        crashing or silently diverging.  Each such event is a
        *recovery*, logged in ``SolveStats.recoveries`` and
        ``GmresResult.breakdown_events``.
    basis_mode:
        ``"cached"`` (default) materializes the decompressed basis in a
        dense float64 view; ``"streaming"`` never does — the fused
        kernels decode one compressed tile at a time (``O(tile)``
        float64 working set, the paper's in-register fusion structure).
        The two modes are bit-identical.
    tile_elems:
        Fused-kernel tile size in elements (rounded up to the storage
        format's block granularity).  Part of the determinism contract:
        solves with different tile sizes may differ in the last ulp.
    tracer:
        Optional :class:`repro.observe.Tracer`.  When given, the solve
        emits nested wall-clock spans (``restart`` / ``arnoldi`` /
        ``spmv`` / ``orthogonalize`` / ``basis_read`` / ``basis_write``
        / ``update``) and counters through every instrumented layer
        (basis, accessors, FRSZ2 codec).  The default null tracer is a
        set of no-ops: results are bit-identical either way, since
        tracing never touches the numerics.
    precision:
        Optional :class:`~repro.solvers.adaptive.ControllerConfig`
        tuning the adaptive precision controller; only consulted when
        ``storage="adaptive"``, which makes the basis storage a
        per-restart decision (downshifting toward frsz2_16 when the
        error model admits it, upshifting on orthogonality distress —
        see :mod:`repro.solvers.adaptive` and ``docs/PRECISION.md``).
        Adaptive results keep ``storage="adaptive"`` and additionally
        carry ``stats.storage_trace`` / ``stats.reads_by_storage`` /
        ``stats.writes_by_storage`` and ``result.precision_trace``.
    storage_factory:
        Format-aware accessor construction ``factory(storage, n)``,
        honored across adaptive format switches (fault injectors wrap
        storage through this hook).  Mutually exclusive with
        ``accessor_factory``, which pins one format.
    max_recoveries:
        Bound on *consecutive fruitless* recoveries: the counter grows
        with every recovery and resets whenever the explicit residual
        improves, so transient faults never kill a progressing solve
        while persistent faults end it promptly with
        ``recovery_exhausted=True`` (callers such as
        :class:`repro.robust.RobustCbGmres` then escalate the storage
        format).
    backend:
        Kernel backend (``"numpy"``/``"jit"``, see
        :mod:`repro.jit.dispatch`) threaded onto the SpMV kernels and
        the basis accessors' codec.  The jit kernels are bit-identical
        to numpy, so the solve trajectory is byte-equal across
        backends; ``"jit"`` degrades to ``"numpy"`` with a
        :class:`~repro.jit.dispatch.JitUnavailableWarning` when no
        engine is available.
    """

    def __init__(
        self,
        a: CSRMatrix,
        storage: str = "float64",
        m: int = DEFAULT_RESTART,
        eta: float = DEFAULT_ETA,
        max_iter: int = DEFAULT_MAX_ITER,
        stall_restarts: Optional[int] = 8,
        stall_factor: float = 0.999,
        accessor_factory: "Callable[[int], VectorAccessor] | None" = None,
        preconditioner: Optional[Preconditioner] = None,
        orthogonalization: str = "cgs",
        recovery: bool = True,
        max_recoveries: int = DEFAULT_MAX_RECOVERIES,
        spmv_format: str = "csr",
        basis_mode: str = "cached",
        tile_elems: int = DEFAULT_TILE_ELEMS,
        tracer=None,
        precision: Optional[ControllerConfig] = None,
        storage_factory: "Callable[[str, int], VectorAccessor] | None" = None,
        backend: "str | None" = None,
    ) -> None:
        if a.shape[0] != a.shape[1]:
            raise ValueError("GMRES requires a square matrix")
        if m < 1:
            raise ValueError("restart length must be positive")
        if spmv_format not in SPMV_FORMATS:
            raise ValueError(
                f"unknown SpMV format {spmv_format!r}; "
                f"expected one of {SPMV_FORMATS}"
            )
        self.spmv_format = spmv_format
        # resolve once so an unavailable-jit warning fires here, not
        # again in every component the resolved name is threaded into
        self.backend = _dispatch.resolve_backend(backend)
        if spmv_format != "csr" and not isinstance(a, SpmvEngine):
            if not isinstance(a, CSRMatrix):
                raise ValueError(
                    f"spmv_format={spmv_format!r} requires a CSRMatrix (or a "
                    "pre-built SpmvEngine); got "
                    f"{type(a).__name__} — wrap operator decorators around "
                    "an SpmvEngine instead"
                )
            a = SpmvEngine(a, format=spmv_format, backend=self.backend)
        elif backend is not None and hasattr(a, "set_backend"):
            # a plain CSRMatrix or pre-built SpmvEngine: switch its
            # kernels in place (bit-identical either way); operators
            # without the knob (fault injectors, custom wrappers) keep
            # whatever backend they were built with
            a.set_backend(self.backend)
        self.a = a
        self.storage = storage
        self.m = int(m)
        self.eta = float(eta)
        self.max_iter = int(max_iter)
        self.stall_restarts = stall_restarts
        self.stall_factor = float(stall_factor)
        self._factory = accessor_factory
        self.preconditioner = preconditioner or IdentityPreconditioner()
        if orthogonalization not in ("cgs", "mgs"):
            raise ValueError("orthogonalization must be 'cgs' or 'mgs'")
        self.orthogonalization = orthogonalization
        self.recovery = bool(recovery)
        if max_recoveries < 0:
            raise ValueError("max_recoveries must be non-negative")
        self.max_recoveries = int(max_recoveries)
        if basis_mode not in BASIS_MODES:
            raise ValueError(
                f"unknown basis_mode {basis_mode!r}; expected one of {BASIS_MODES}"
            )
        self.basis_mode = basis_mode
        self.tile_elems = int(tile_elems)
        self.tracer = tracer or NULL_TRACER
        if self.tracer is not NULL_TRACER:
            getattr(self.preconditioner, "attach_tracer", lambda t: None)(
                self.tracer
            )
        if accessor_factory is not None and storage_factory is not None:
            raise ValueError(
                "pass accessor_factory (fixed format) or storage_factory "
                "(format-aware), not both"
            )
        if storage == ADAPTIVE_STORAGE and accessor_factory is not None:
            raise ValueError(
                "adaptive storage switches formats mid-solve; override "
                "accessor construction with storage_factory=... instead of "
                "the fixed-format accessor_factory"
            )
        self.precision = precision
        self._storage_factory = storage_factory

    def solve(
        self,
        b: np.ndarray,
        target_rrn: float,
        x0: Optional[np.ndarray] = None,
        record_history: bool = True,
        monitor: "Callable[[int, int, KrylovBasis, float], None] | None" = None,
    ) -> GmresResult:
        """Solve ``A x = b`` to ``||b - A x|| <= target_rrn * ||b||``.

        Parameters
        ----------
        b : ndarray, shape (n,), dtype float64
            Right-hand side; ``n`` is the matrix dimension.
        target_rrn : float
            Relative residual norm to reach (the paper's per-matrix
            calibrated targets; see Table I).  Must be non-negative.
        x0 : ndarray, shape (n,), dtype float64, optional
            Initial guess; defaults to the zero vector (paper §V-B).
        record_history : bool, default True
            Record a :class:`ResidualSample` per iteration (implicit
            Givens estimates) and per restart (explicit residuals) in
            ``result.history``.
        monitor : callable, optional
            ``monitor(iteration, j, basis, implicit_rrn)`` is invoked
            after every Arnoldi step with the live (lossy)
            :class:`~repro.solvers.basis.KrylovBasis` — the hook the
            analysis tools use to observe orthogonality decay without
            perturbing the solve.

        Returns
        -------
        GmresResult
            ``x`` (shape ``(n,)``, float64), ``converged``,
            ``iterations``, ``final_rrn`` (explicitly recomputed),
            ``history``, per-kernel ``stats`` (the timing model's
            input), and the ``breakdown_events`` / ``recoveries``
            fault-tolerance log.

        Raises
        ------
        ValueError
            If ``b`` has the wrong shape or ``target_rrn`` is negative.
        """
        a = self.a
        n = a.shape[0]
        prec = self.preconditioner
        orthogonalize = (
            cgs_orthogonalize if self.orthogonalization == "cgs" else mgs_orthogonalize
        )
        b = np.asarray(b, dtype=np.float64)
        if b.shape != (n,):
            raise ValueError(f"b must have shape ({n},)")
        if target_rrn < 0:
            raise ValueError("target_rrn must be non-negative")
        bnorm = float(np.linalg.norm(b))
        x = np.zeros(n) if x0 is None else np.array(x0, dtype=np.float64)

        tracer = self.tracer
        adaptive = self.storage == ADAPTIVE_STORAGE
        controller: Optional[PrecisionController] = (
            PrecisionController(self.precision, tracer=tracer) if adaptive else None
        )
        # a fresh controller per solve keeps solves independent (and the
        # cached/streaming bit-identity contract: decisions depend only
        # on explicit residuals, which the modes share exactly)
        basis = KrylovBasis(
            n,
            self.m,
            # adaptive: first decision lands before the first write; the
            # ladder top is a never-read placeholder until then
            controller.config.ladder[-1] if controller else self.storage,
            self._factory,
            tracer=tracer,
            basis_mode=self.basis_mode,
            tile_elems=self.tile_elems,
            storage_factory=self._storage_factory,
            backend=self.backend,
        )
        stats = SolveStats(
            n=n,
            nnz=a.nnz,
            bits_per_value=basis.bits_per_value,
            spmv_format=getattr(a, "resolved_format", "csr"),
            spmv_padded_entries=int(getattr(a, "padded_entries", a.nnz)),
            basis_mode=self.basis_mode,
            basis_tile_elems=basis.tile_elems,
        )
        history: List[ResidualSample] = []
        if bnorm == 0.0:
            return GmresResult(
                x=np.zeros(n),
                converged=True,
                iterations=0,
                final_rrn=0.0,
                target_rrn=target_rrn,
                storage=self.storage,
                history=history,
                stats=stats,
            )

        # Arnoldi SpMV scratch: every matvec in the cycle lands in the
        # same preallocated buffer (the orthogonalization copies w before
        # mutating it, so the buffer never escapes an iteration); skipped
        # for operators whose matvec lacks an ``out=`` parameter
        try:
            matvec_takes_out = "out" in inspect.signature(a.matvec).parameters
        except (TypeError, ValueError):  # builtins/C callables
            matvec_takes_out = False
        w_buf = np.empty(n) if matvec_takes_out else None

        total_iters = 0
        stagnant = 0
        fruitless = 0
        prev_explicit = np.inf
        rrn = np.inf
        converged = False
        stalled = False
        events: List[BreakdownEvent] = []
        exhausted = False
        # adaptive bookkeeping: stat counters at the open cycle's start
        # (to compute per-cycle feedback deltas) and the stored bits of
        # every format actually used (for the traffic-weighted mean)
        cycle_mark: Optional[dict] = None
        bits_seen: Dict[str, float] = {}

        def bucket(d: Dict[str, int], k: int) -> None:
            d[basis.storage] = d.get(basis.storage, 0) + k

        def recover(event: BreakdownEvent) -> bool:
            """Log a recovery; True while the fruitless budget remains."""
            nonlocal fruitless
            events.append(event)
            stats.recoveries += 1
            fruitless += 1
            return fruitless <= self.max_recoveries

        while True:
          with tracer.span("restart", index=stats.restarts):
            # -- (re)start: explicit residual ---------------------------
            with tracer.span("spmv"):
                ax = a.matvec(x)
            r = b - ax
            stats.spmv_calls += 1
            stats.dense_vector_ops += 2
            beta = float(np.linalg.norm(r))
            if self.recovery and not np.isfinite(beta):
                # a fault in the restart SpMV itself (x is known finite:
                # poisoned updates are never applied) — recompute
                if recover(BreakdownEvent(total_iters, "nonfinite_residual")):
                    continue
                exhausted = True
                break
            rrn = beta / bnorm
            if rrn < prev_explicit:
                fruitless = 0  # real progress: replenish the budget
            if record_history:
                history.append(ResidualSample(total_iters, rrn, "explicit"))
            if rrn <= target_rrn:
                converged = True
                break
            if total_iters >= self.max_iter:
                break
            if self.stall_restarts is not None and stats.restarts > 0:
                if rrn > prev_explicit * self.stall_factor:
                    stagnant += 1
                    if stagnant >= self.stall_restarts:
                        stalled = True
                        break
                else:
                    stagnant = 0
            prev_explicit = min(prev_explicit, rrn)

            if controller is not None:
                # feed the finished cycle back, then pick this cycle's
                # storage — both on explicit residuals, so the decision
                # stream is identical across basis modes
                if cycle_mark is not None:
                    controller.observe_cycle(CycleFeedback(
                        storage=basis.storage,
                        start_rrn=cycle_mark["rrn"],
                        end_rrn=rrn,
                        iterations=stats.iterations - cycle_mark["iters"],
                        reorthogonalizations=(
                            stats.reorthogonalizations - cycle_mark["reorth"]
                        ),
                        loss_of_orthogonality=any(
                            e.kind == "loss_of_orthogonality"
                            for e in events[cycle_mark["events"]:]
                        ),
                        recoveries=stats.recoveries - cycle_mark["recov"],
                    ))
                decision = controller.decide(rrn, target_rrn)
                if decision.storage != basis.storage:
                    basis.set_storage(decision.storage)
                stats.storage_trace.append(decision.storage)
                cycle_mark = {
                    "rrn": rrn,
                    "iters": stats.iterations,
                    "reorth": stats.reorthogonalizations,
                    "recov": stats.recoveries,
                    "events": len(events),
                }

            basis.reset()
            v = r / beta
            basis.write_vector(0, v)
            stats.basis_writes += 1
            if adaptive:
                bucket(stats.writes_by_storage, 1)
                bits_seen[basis.storage] = basis.bits_per_value
            lsq = GivensLeastSquares(self.m, beta)

            # -- Arnoldi cycle ------------------------------------------
            j_used = 0
            poison: Optional[BreakdownEvent] = None
            for j in range(1, self.m + 1):
              with tracer.span("arnoldi", j=j):
                # Fig. 1 step 2: w := A (M^-1 v); the newest vector stays
                # in double precision
                if prec.is_identity:
                    z = v
                else:
                    z = prec.apply(v)
                    stats.preconditioner_applies += 1
                with tracer.span("spmv"):
                    if w_buf is not None:
                        w = a.matvec(z, out=w_buf)
                    else:
                        w = a.matvec(z)
                stats.spmv_calls += 1
                if self.recovery and not np.all(np.isfinite(w)):
                    poison = BreakdownEvent(total_iters, "nonfinite_spmv")
                    break
                with tracer.span("orthogonalize"):
                    ores = orthogonalize(basis, j, w, self.eta)
                stats.basis_reads += 2 * j if ores.reorthogonalized else j
                if adaptive:
                    bucket(
                        stats.reads_by_storage,
                        2 * j if ores.reorthogonalized else j,
                    )
                stats.reorthogonalizations += int(ores.reorthogonalized)
                stats.dense_vector_ops += 4
                if self.recovery and ores.nonfinite:
                    poison = BreakdownEvent(
                        total_iters, "nonfinite_orthogonalization"
                    )
                    break
                total_iters += 1
                stats.iterations += 1
                impl = lsq.append_column(ores.h, ores.h_next) / bnorm
                j_used = j
                if record_history:
                    history.append(ResidualSample(total_iters, impl, "implicit"))
                if monitor is not None:
                    monitor(total_iters, j, basis, impl)
                if ores.breakdown:
                    break  # happy breakdown: solution is in the subspace
                if self.recovery and ores.loss_of_orthogonality:
                    # the columns absorbed so far are valid: apply the
                    # partial update below, then restart the cycle early
                    events.append(
                        BreakdownEvent(total_iters, "loss_of_orthogonality")
                    )
                    break
                v = ores.w / ores.h_next
                try:
                    basis.write_vector(j, v)
                except (ValueError, OverflowError) as exc:
                    if not self.recovery:
                        raise
                    poison = BreakdownEvent(
                        total_iters, "basis_write_failed", str(exc)
                    )
                    break
                stats.basis_writes += 1
                if adaptive:
                    bucket(stats.writes_by_storage, 1)
                if impl <= target_rrn or total_iters >= self.max_iter:
                    break

            if poison is not None:
                # discard the poisoned tail; columns absorbed before the
                # fault are provably finite and are salvaged into a
                # partial update below (the next restart re-anchors on a
                # fresh explicit residual either way)
                if not recover(poison):
                    exhausted = True
                    break
                if j_used == 0:
                    continue  # fault hit before any column was absorbed

            # -- solution update ----------------------------------------
            # Fig. 1 step 18: x := x0 + M^-1 (V_m y)
            with tracer.span("update", columns=j_used):
                y = lsq.solve()
                update = basis.combine(j_used, y)
            if not prec.is_identity:
                update = prec.apply(update)
                stats.preconditioner_applies += 1
            if self.recovery and not np.all(np.isfinite(update)):
                # corrupted stored vectors leaked into V_m y: drop it
                if recover(BreakdownEvent(total_iters, "nonfinite_update")):
                    continue
                exhausted = True
                break
            x = x + update
            stats.basis_reads += j_used
            if adaptive:
                bucket(stats.reads_by_storage, j_used)
            stats.dense_vector_ops += 1
            stats.restarts += 1

        with tracer.span("spmv"):
            final_ax = a.matvec(x)
        final_rrn = float(np.linalg.norm(b - final_ax) / bnorm)
        stats.spmv_calls += 1
        if self.recovery and not np.isfinite(final_rrn):
            # the verification SpMV itself was hit; x is finite, so report
            # the last trustworthy explicit residual instead of NaN
            events.append(BreakdownEvent(total_iters, "nonfinite_residual"))
            final_rrn = rrn if np.isfinite(rrn) else float(prev_explicit)
        # round-trip formats only know their compressed size after writing
        stats.bits_per_value = basis.bits_per_value
        if controller is not None:
            stats.precision_upshifts = controller.upshifts
            stats.precision_downshifts = controller.downshifts
            # one scalar cannot name a mixed-storage solve's width, so
            # report the traffic-weighted mean of the formats used
            touches = {
                fmt: stats.reads_by_storage.get(fmt, 0)
                + stats.writes_by_storage.get(fmt, 0)
                for fmt in bits_seen
            }
            weight = sum(touches.values())
            if weight:
                stats.bits_per_value = (
                    sum(bits_seen[f] * t for f, t in touches.items()) / weight
                )
        stats.basis_peak_float64_bytes = basis.peak_float64_bytes
        flog = basis.fused_log
        stats.fused_dot_calls = flog.dot_calls
        stats.fused_dot_vectors = flog.dot_vectors
        stats.fused_axpy_calls = flog.axpy_calls
        stats.fused_axpy_vectors = flog.axpy_vectors
        stats.fused_combine_calls = flog.combine_calls
        stats.fused_combine_vectors = flog.combine_vectors
        stats.fused_tiles = flog.tiles
        stats.fused_values = flog.values
        return GmresResult(
            x=x,
            converged=converged,
            iterations=total_iters,
            final_rrn=final_rrn,
            target_rrn=target_rrn,
            storage=self.storage,
            history=history,
            stats=stats,
            stalled=stalled,
            breakdown_events=events,
            recovery_exhausted=exhausted,
            precision_trace=list(controller.decisions) if controller else [],
        )

    def solve_batch(
        self,
        B,
        target_rrn,
        x0: Optional[np.ndarray] = None,
        record_history: bool = True,
        monitor=None,
    ):
        """Solve ``A X = B`` for many right-hand sides in lockstep.

        The batched path shares one matrix structure across all
        columns: restart residuals and Arnoldi SpMVs run through the
        multi-vector kernels (``A @ X``), orthogonalization streams
        every column's stored basis in one stacked tile pass, and new
        basis vectors FRSZ2-encode in a single
        :meth:`~repro.core.frsz2.FRSZ2.compress_batch` call per step.
        Column ``c`` of the result is **bit-identical** to
        ``self.solve(B[:, c], ...)`` — converged/poisoned columns
        simply leave the lockstep early (see
        :mod:`repro.solvers.block`).

        Parameters
        ----------
        B : ndarray (n, nrhs) or sequence of (n,) vectors
            Right-hand sides, one per column.
        target_rrn : float or sequence of float
            Relative-residual target, shared or per column.
        x0 : ndarray (n, nrhs), optional
            Initial guesses (default: zero).
        record_history : bool, default True
            As in :meth:`solve`, per column.
        monitor : callable, optional
            ``monitor(col, iteration, j, basis, implicit_rrn)`` — the
            :meth:`solve` hook with the column index prepended.

        Returns
        -------
        BatchGmresResult
            Per-column :class:`GmresResult` objects plus counters for
            how much work ran through the batched fast paths.
        """
        from .block import solve_batch as _solve_batch

        if self.storage == ADAPTIVE_STORAGE:
            raise ValueError(
                "solve_batch does not support adaptive storage: each "
                "column's controller would diverge from the lockstep; "
                "solve the columns independently instead"
            )
        return _solve_batch(
            self,
            B,
            target_rrn,
            x0=x0,
            record_history=record_history,
            monitor=monitor,
        )
