"""CB-GMRES solver stack (paper Fig. 1) and supporting numerics."""

from .adaptive import (
    ADAPTIVE_STORAGE,
    DEFAULT_LADDER,
    ControllerConfig,
    CycleFeedback,
    PrecisionController,
    PrecisionDecision,
    storage_unit_roundoff,
)
from .analysis import OrthogonalityTrace, basis_perturbation, trace_orthogonality
from .basis import KrylovBasis, write_basis_vectors_batch
from .block import BatchGmresResult, solve_batch
from .calibration import CalibrationResult, calibrate_suite, calibrate_target
from .fgmres import FlexibleGmres
from .gmres import (
    DEFAULT_MAX_ITER,
    DEFAULT_MAX_RECOVERIES,
    DEFAULT_RESTART,
    BreakdownEvent,
    CbGmres,
    GmresResult,
    ResidualSample,
    SolveStats,
)
from .hessenberg import GivensLeastSquares
from .orthogonal import (
    DEFAULT_ETA,
    OrthogonalizationResult,
    cgs_orthogonalize,
    mgs_orthogonalize,
)
from .preconditioner import (
    PREC_STORAGES,
    PRECONDITIONERS,
    BlockJacobiPreconditioner,
    IdentityPreconditioner,
    ILU0Preconditioner,
    JacobiPreconditioner,
    Preconditioner,
    PreconditionerError,
    ZeroPivotError,
    make_preconditioner,
)
from .predictor import (
    BasisRiskFeatures,
    FormatRecommendation,
    exponent_spread_features,
    predict_format,
)
from .problems import Problem, make_expected_solution, make_problem, make_rhs

__all__ = [
    "ADAPTIVE_STORAGE",
    "DEFAULT_LADDER",
    "ControllerConfig",
    "CycleFeedback",
    "PrecisionController",
    "PrecisionDecision",
    "storage_unit_roundoff",
    "BatchGmresResult",
    "KrylovBasis",
    "solve_batch",
    "write_basis_vectors_batch",
    "OrthogonalityTrace",
    "basis_perturbation",
    "trace_orthogonality",
    "FlexibleGmres",
    "CalibrationResult",
    "calibrate_suite",
    "calibrate_target",
    "BreakdownEvent",
    "CbGmres",
    "GmresResult",
    "ResidualSample",
    "SolveStats",
    "DEFAULT_MAX_ITER",
    "DEFAULT_MAX_RECOVERIES",
    "DEFAULT_RESTART",
    "GivensLeastSquares",
    "DEFAULT_ETA",
    "OrthogonalizationResult",
    "cgs_orthogonalize",
    "mgs_orthogonalize",
    "Preconditioner",
    "PreconditionerError",
    "ZeroPivotError",
    "PRECONDITIONERS",
    "PREC_STORAGES",
    "IdentityPreconditioner",
    "JacobiPreconditioner",
    "BlockJacobiPreconditioner",
    "ILU0Preconditioner",
    "make_preconditioner",
    "BasisRiskFeatures",
    "FormatRecommendation",
    "exponent_spread_features",
    "predict_format",
    "Problem",
    "make_expected_solution",
    "make_problem",
    "make_rhs",
]
