"""Incremental Givens-rotation QR of the GMRES Hessenberg matrix.

GMRES minimizes ``||beta e_1 - H_m y||`` (Fig. 1 step 18).  Applying one
Givens rotation per Arnoldi step keeps the problem triangular and yields
the *implicit* residual norm for free: after ``j`` steps the magnitude of
the rotated right-hand side's last entry equals the current residual
norm.  This is the quantity GMRES tracks between restarts — the paper's
Fig. 9a jumps happen precisely because this estimate is only re-anchored
by an explicit residual computation at each restart.
"""

from __future__ import annotations

import numpy as np

__all__ = ["GivensLeastSquares"]


class GivensLeastSquares:
    """Incremental solver for ``min_y ||beta e_1 - H y||_2``."""

    def __init__(self, m: int, beta: float) -> None:
        if m < 1:
            raise ValueError("m must be positive")
        self.m = m
        # R is stored upper-triangular, column j filled at step j
        self._r = np.zeros((m + 1, m))
        self._cs = np.zeros(m)
        self._sn = np.zeros(m)
        self._g = np.zeros(m + 1)
        self._g[0] = beta
        self._j = 0

    @property
    def size(self) -> int:
        """Number of columns absorbed so far."""
        return self._j

    @property
    def residual_norm(self) -> float:
        """Implicit residual norm ``|g_{j+1}|`` after ``j`` steps."""
        return abs(float(self._g[self._j]))

    def append_column(self, h: np.ndarray, h_next: float) -> float:
        """Absorb Hessenberg column ``(h_{1:j,j}, h_{j+1,j})``.

        Returns the updated implicit residual norm.
        """
        j = self._j
        if j >= self.m:
            raise RuntimeError("least-squares system is full")
        if not (np.isfinite(h_next) and bool(np.all(np.isfinite(h)))):
            # A NaN/Inf here would silently poison every later rotation
            # and the right-hand side; fail loudly so the solver's
            # recovery path (or the caller) can discard the cycle.
            raise FloatingPointError("non-finite Hessenberg column")
        col = np.zeros(self.m + 1)
        col[: h.size] = h
        col[h.size] = h_next
        # apply the accumulated rotations to the new column
        for i in range(j):
            c, s = self._cs[i], self._sn[i]
            t = c * col[i] + s * col[i + 1]
            col[i + 1] = -s * col[i] + c * col[i + 1]
            col[i] = t
        # new rotation annihilating the subdiagonal entry
        a, b = col[j], col[j + 1]
        r = float(np.hypot(a, b))
        if r == 0.0:
            c, s = 1.0, 0.0
        else:
            c, s = a / r, b / r
        self._cs[j], self._sn[j] = c, s
        col[j], col[j + 1] = r, 0.0
        # rotate the right-hand side
        gj = self._g[j]
        self._g[j] = c * gj
        self._g[j + 1] = -s * gj
        self._r[:, j] = col[: self.m + 1]
        self._j += 1
        return self.residual_norm

    def solve(self) -> np.ndarray:
        """Back-substitute for the minimizer ``y`` over the first j columns."""
        j = self._j
        if j == 0:
            return np.zeros(0)
        r = self._r[:j, :j]
        y = np.zeros(j)
        for i in range(j - 1, -1, -1):
            s = self._g[i] - r[i, i + 1 :] @ y[i + 1 :]
            diag = r[i, i]
            if diag == 0.0:
                # exact breakdown: the subspace already contains the
                # solution; a zero component is the minimum-norm choice
                y[i] = 0.0
            else:
                y[i] = s / diag
        return y
