"""Table II: comparator-compressor configurations.

Regenerates the configuration table and, beyond the paper, reports what
each configuration actually does to a Krylov vector (achieved bound,
bits per value) plus round-trip throughput of each compressor.
"""

import numpy as np
import pytest

from repro.bench import format_table, table2_rows
from repro.compressors import TABLE_II, evaluate, make_compressor


def krylov_like(n=32 * 2048, seed=7):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(n)
    return x / np.linalg.norm(x)


def test_table2_configurations(benchmark, paper_report):
    rows = benchmark.pedantic(table2_rows, rounds=1, iterations=1, warmup_rounds=0)
    paper_report(
        format_table(
            "Table II — compressor name and requested bounds",
            ["name", "error-bound type", "error-bound"],
            rows,
        )
    )


def test_table2_achieved_quality(benchmark, paper_report):
    """Measured bound satisfaction and storage cost on Krylov data."""
    x = krylov_like()

    def run():
        rows = []
        for name in sorted(TABLE_II) + ["frsz2_16", "frsz2_21", "frsz2_32"]:
            r = evaluate(make_compressor(name), x)
            rows.append(
                (
                    name,
                    r.bits_per_value,
                    r.compression_ratio,
                    r.max_abs_error,
                    r.max_pw_rel_error,
                    "yes" if r.bound_satisfied else "NO",
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    paper_report(
        format_table(
            "Table II (extended) — achieved quality on a Krylov vector",
            ["name", "bits/value", "ratio", "max abs err", "max pw-rel err", "bound ok"],
            rows,
        )
    )


@pytest.mark.parametrize("name", ["sz3_08", "zfp_fr_32", "frsz2_32"])
def test_compressor_roundtrip_throughput(benchmark, name):
    """Round-trip (compress+decompress) throughput per configuration."""
    x = krylov_like()
    comp = make_compressor(name)
    out = benchmark(comp.roundtrip, x)
    assert out.shape == x.shape
