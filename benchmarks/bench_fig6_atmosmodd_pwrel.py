"""Fig. 6: atmosmodd convergence with pointwise-relative error settings.

The paper's finding: pointwise-relative bounds preserve value magnitudes
and converge better than absolute bounds, but still none of the generic
compressors matches float32; frsz2_32 has the best convergence of all
tested compression techniques.
"""

from repro.bench import convergence_histories, format_series, format_table

STORAGES = (
    "float64",
    "float32",
    "frsz2_32",
    "sz_pwrel_04",
    "sz3_pwrel_04",
    "zfp_fr_16",
    "zfp_fr_32",
)

_MAX_ITER = 1200


def test_fig6_pointwise_relative_convergence(benchmark, paper_report):
    results = benchmark.pedantic(
        convergence_histories,
        args=("atmosmodd", STORAGES),
        kwargs={"max_iter": _MAX_ITER},
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    series = {
        fmt: [(int(i), float(v)) for i, v in zip(*r.history_arrays())]
        for fmt, r in results.items()
    }
    paper_report(
        format_series(
            "Fig. 6 — atmosmodd residual norm, pointwise-relative settings",
            "iteration",
            series,
            max_points=25,
        )
    )
    rows = [
        (fmt, r.iterations, r.final_rrn, "yes" if r.converged else "no")
        for fmt, r in results.items()
    ]
    paper_report(format_table("Fig. 6 summary", ["storage", "iterations", "final RRN", "converged"], rows))

    # frsz2_32 beats every generic compressor (paper: "best convergence
    # rate among all tested compression techniques")
    frsz2_iters = results["frsz2_32"].iterations
    for name in ("sz_pwrel_04", "sz3_pwrel_04", "zfp_fr_16", "zfp_fr_32"):
        r = results[name]
        assert (not r.converged) or r.iterations >= frsz2_iters


def test_fig6_pwrel_beats_abs_for_convergence(benchmark, paper_report):
    """Pointwise-relative SZ converges better than absolute-bound SZ at
    comparable information budgets (the Fig. 5 vs Fig. 6 comparison)."""
    results = benchmark.pedantic(
        convergence_histories,
        args=("atmosmodd", ("sz3_06", "sz3_pwrel_04")),
        kwargs={"max_iter": _MAX_ITER},
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    abs_r = results["sz3_06"]
    rel_r = results["sz3_pwrel_04"]
    rows = [
        (k, r.iterations, r.final_rrn, "yes" if r.converged else "no")
        for k, r in results.items()
    ]
    paper_report(
        format_table(
            "Fig. 5/6 — absolute vs pointwise-relative bound",
            ["storage", "iterations", "final RRN", "converged"],
            rows,
        )
    )
    if rel_r.converged and abs_r.converged:
        assert rel_r.iterations <= abs_r.iterations
    else:
        assert rel_r.final_rrn <= abs_r.final_rrn * 10
