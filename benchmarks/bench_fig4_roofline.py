"""Fig. 4: storage-format performance vs. arithmetic intensity (H100).

Two complementary reproductions:

* the **H100 model series** — the calibrated roofline/instruction model
  predicting the published curves (who is fastest where, the frsz2_32 /
  Acc<float32> gap, the frsz2_21 alignment penalty, the 99.6% bandwidth
  figure, and the cuSZp2 comparison of claim 4);
* **measured host throughput** — pytest-benchmark timings of the actual
  NumPy codec streaming 2^24 values on this machine (the shape, not the
  absolute numbers, is the comparable quantity).

Also covers the Section IV-C index-arithmetic note: the model entry
``frsz2_32 (64-bit idx)`` charges the extra integer work of 64-bit index
computations the paper found "noticeably slower".
"""

import numpy as np
import pytest

from repro.bench import format_series, format_table
from repro.core import FRSZ2
from repro.gpu import (
    DEFAULT_INTENSITIES,
    H100_PCIE,
    bandwidth_efficiency,
    cuszp2_bandwidth_range,
    format_cost,
    frsz2_vs_cuszp2_speedup,
    roofline_series,
)
from repro.gpu.kernels import KernelCost

_N_MEASURED = 2**24


def test_fig4_h100_model_series(benchmark, paper_report):
    series = benchmark.pedantic(
        roofline_series, rounds=1, iterations=1, warmup_rounds=0
    )
    table = {
        name: [(p.arithmetic_intensity, p.gflops) for p in pts]
        for name, pts in series.items()
    }
    paper_report(
        format_series(
            "Fig. 4 — modeled H100 performance (GFLOP/s) vs arithmetic intensity",
            "flops/value",
            table,
            max_points=14,
        )
    )
    # headline claims
    lo, hi = frsz2_vs_cuszp2_speedup()
    cus_lo, cus_hi = cuszp2_bandwidth_range()
    paper_report(
        format_table(
            "Fig. 4 headline numbers",
            ["quantity", "model", "paper"],
            [
                ("frsz2_32 bandwidth efficiency", f"{bandwidth_efficiency('Acc<frsz2_32>'):.1%}", "99.6%"),
                ("frsz2_32 vs cuSZp2 (best case for cuSZp2)", f"{lo:.2f}x", "1.2x"),
                ("frsz2_32 vs cuSZp2 (typical)", f"{hi:.2f}x", "3.1x"),
                ("cuSZp2 modeled bandwidth range GB/s", f"{cus_lo/1e9:.0f}-{cus_hi/1e9:.0f}", "500-1241 (A100)"),
            ],
        )
    )


def test_fig4_index_arithmetic_ablation(benchmark, paper_report):
    """Section IV-C opt. 4: 64-bit index computations are slower."""
    fmt = format_cost("Acc<frsz2_32>")

    def run():
        rows = []
        for label, extra in (("32-bit indices", 0), ("64-bit indices", 12)):
            cost = KernelCost(
                bytes_moved=_N_MEASURED * fmt.stored_bits / 8,
                fp64_flops=_N_MEASURED * 1.0,
                int_ops=_N_MEASURED * (fmt.decompress_ops + extra),
                aligned=True,
                bw_derate=fmt.bandwidth_derate,
            )
            t = cost.time_on(H100_PCIE)
            rows.append((label, fmt.decompress_ops + extra, _N_MEASURED / t / 1e9))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    paper_report(
        format_table(
            "Fig. 4 ablation — index arithmetic width (model)",
            ["variant", "ops/value", "Gvalues/s"],
            rows,
        )
    )
    assert rows[0][2] >= rows[1][2]


@pytest.mark.parametrize("l", [16, 21, 32])
def test_fig4_measured_decompression_throughput(benchmark, l):
    """Host-measured decompression of the real codec (shape check)."""
    rng = np.random.default_rng(l)
    x = rng.standard_normal(_N_MEASURED // 8)  # keep CI time sane
    codec = FRSZ2(l)
    comp = codec.compress(x)
    out = np.empty(x.size)
    benchmark(codec.decompress, comp, out)
    assert np.isfinite(out).all()


def test_fig4_measured_float64_baseline(benchmark):
    """Measured plain float64 read+op baseline for the same array size."""
    rng = np.random.default_rng(0)
    x = rng.standard_normal(_N_MEASURED // 8)

    def stream():
        return x * 1.000001

    benchmark(stream)
