"""Table I: the computational-fluid-dynamics matrix suite.

Regenerates the paper's Table I (matrix, size, non-zeros, target RRN)
for the synthetic analogs at the active scale, alongside the paper's
SuiteSparse numbers.  The benchmark measures suite-matrix assembly.
"""

import pytest

from repro.bench import format_table, table1_rows
from repro.sparse import build_matrix, resolve_scale


def test_table1_matrix_suite(benchmark, paper_report):
    scale = resolve_scale()
    rows = benchmark.pedantic(
        table1_rows, args=(scale,), rounds=1, iterations=1, warmup_rounds=0
    )
    paper_report(
        format_table(
            f"Table I — CFD matrix suite (scale={scale})",
            [
                "matrix",
                "size",
                "non-zeros",
                "paper size",
                "paper nnz",
                "target RRN",
                "paper target RRN",
            ],
            rows,
        )
    )


@pytest.mark.parametrize("name", ["atmosmodd", "PR02R", "StocF-1465"])
def test_matrix_assembly_throughput(benchmark, name):
    """Assembly speed of representative generators (CSR triplets/s)."""
    a = benchmark(build_matrix, name, "smoke")
    assert a.nnz > 0
