"""Fig. 5: atmosmodd convergence with absolute-error-bound compressors.

Residual-norm development of CB-GMRES on atmosmodd with the Krylov basis
stored as float64/float32/frsz2_32 and round-tripped through the
absolute-bound comparator configurations (sz3_06/07/08, zfp_06, zfp_10).

Paper shapes this reproduces: frsz2_32 tracks float64 closely and beats
float32; none of the absolute-bound SZ3/ZFP settings match float32's
convergence despite several using more bits per value.
"""

from repro.bench import convergence_histories, format_series, format_table
from repro.solvers.problems import make_problem

STORAGES = (
    "float64",
    "float32",
    "frsz2_32",
    "sz3_06",
    "sz3_07",
    "sz3_08",
    "zfp_06",
    "zfp_10",
)

_MAX_ITER = 1200


def test_fig5_absolute_bound_convergence(benchmark, paper_report):
    results = benchmark.pedantic(
        convergence_histories,
        args=("atmosmodd", STORAGES),
        kwargs={"max_iter": _MAX_ITER},
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    series = {
        fmt: list(zip(*r.history_arrays()))
        for fmt, r in results.items()
    }
    target = make_problem("atmosmodd").target_rrn
    paper_report(
        format_series(
            f"Fig. 5 — atmosmodd residual norm, absolute-bound compressors "
            f"(target {target:.0e})",
            "iteration",
            {k: [(int(i), float(v)) for i, v in pts] for k, pts in series.items()},
            max_points=25,
        )
    )
    rows = [
        (fmt, r.iterations, r.final_rrn, "yes" if r.converged else "no",
         r.stats.bits_per_value)
        for fmt, r in results.items()
    ]
    paper_report(
        format_table(
            "Fig. 5 summary",
            ["storage", "iterations", "final RRN", "converged", "bits/value"],
            rows,
        )
    )
    # the paper's quality ordering on atmosmodd
    assert results["float64"].converged
    assert results["frsz2_32"].converged
    assert results["frsz2_32"].iterations <= results["float32"].iterations
    for name in ("sz3_06", "zfp_06"):
        r = results[name]
        assert (not r.converged) or r.iterations > results["float32"].iterations
