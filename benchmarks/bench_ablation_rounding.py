"""Ablation: truncation vs round-to-nearest in FRSZ2's cut step.

Compression step 5 "cut[s] the new representation to the appropriate
length l" — truncation, which needs no extra instructions and cannot
carry into the sign bit.  Round-to-nearest halves the worst-case error
at the cost of an add (and a carry clamp).  This bench quantifies what
the paper's design choice gives up: per-value accuracy, instructions,
and end-to-end iterations.
"""

import numpy as np

from repro.accessor import accessor_factory
from repro.bench import format_table
from repro.core import FRSZ2
from repro.solvers import CbGmres, make_problem


def test_ablation_rounding_accuracy(benchmark, paper_report):
    rng = np.random.default_rng(2)
    x = rng.standard_normal(1 << 16)
    x /= np.linalg.norm(x)

    def run():
        rows = []
        for l in (16, 32):
            trunc = np.abs(FRSZ2(l, rounding=False).roundtrip(x) - x)
            rnd = np.abs(FRSZ2(l, rounding=True).roundtrip(x) - x)
            rows.append(
                (
                    l,
                    float(trunc.max()),
                    float(rnd.max()),
                    float(trunc.max() / rnd.max()),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    paper_report(
        format_table(
            "Ablation — truncation vs rounding: worst-case error",
            ["l", "truncate max err", "round max err", "ratio"],
            rows,
        )
    )
    for _, terr, rerr, ratio in rows:
        assert rerr <= terr
        assert ratio > 1.5  # rounding roughly halves the worst case


def test_ablation_rounding_end_to_end(benchmark, paper_report):
    p = make_problem("atmosmodd")

    def run():
        rows = []
        for rounding in (False, True):
            factory = accessor_factory("frsz2_32", rounding=rounding)
            res = CbGmres(p.a, "frsz2_32", accessor_factory=factory).solve(
                p.b, p.target_rrn
            )
            rows.append(
                (
                    "round-to-nearest" if rounding else "truncate (paper)",
                    res.iterations,
                    "yes" if res.converged else "no",
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    paper_report(
        format_table(
            "Ablation — truncation vs rounding end-to-end on atmosmodd",
            ["cut mode", "iterations", "converged"],
            rows,
        )
    )
    assert all(r[2] == "yes" for r in rows)
    trunc_iters = rows[0][1]
    round_iters = rows[1][1]
    # rounding can only help convergence modestly; the design point is
    # that truncation is already close enough to be worth the saved ops
    assert round_iters <= trunc_iters
    assert trunc_iters <= round_iters * 1.5
