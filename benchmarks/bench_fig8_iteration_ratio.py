"""Fig. 8: iterations to solution relative to float64 (0 = no convergence).

Paper shapes this reproduces: on the atmosmod family float64 converges
fastest, followed by frsz2_32, then float32, then float16 (frsz2_32 has
the smallest iteration overhead of all compressed formats); PR02R is
FRSZ2's worst case with a several-fold iteration increase; float16 shows
zero (no convergence) on PR02R and StocF-1465.
"""

from repro.bench import FIG7_FORMATS, figure8_rows, format_table
from repro.sparse import resolve_scale


def test_fig8_iteration_ratios(benchmark, paper_report):
    scale = resolve_scale()
    rows = benchmark.pedantic(
        figure8_rows, args=(scale,), rounds=1, iterations=1, warmup_rounds=0
    )
    paper_report(
        format_table(
            f"Fig. 8 — iterations relative to float64 (scale={scale}; 0 = failed)",
            ["matrix", "float64 iters"] + [f"{f}/f64" for f in FIG7_FORMATS],
            rows,
        )
    )
    by_name = {r[0]: r for r in rows}
    col = {f: 2 + i for i, f in enumerate(FIG7_FORMATS)}

    # atmosmod group ordering: f64 < frsz2_32 < float32 < float16
    for name in ("atmosmodd", "atmosmodj", "atmosmodl", "atmosmodm"):
        row = by_name[name]
        assert row[col["float64"]] == 1.0
        assert 1.0 < row[col["frsz2_32"]] < row[col["float32"]] < row[col["float16"]]

    # PR02R: frsz2_32 converges with a several-fold iteration increase
    pr = by_name["PR02R"]
    assert pr[col["frsz2_32"]] > 3.0
    assert pr[col["float16"]] == 0.0  # removed bar
    assert by_name["StocF-1465"][col["float16"]] == 0.0

    # everything else barely differs for frsz2_32 (< 2.5x)
    for name in ("cfd2", "HV15R", "lung2", "parabolic_fem", "RM07R"):
        assert 0.9 <= by_name[name][col["frsz2_32"]] < 2.5
