"""Ablation: can reordering rescue FRSZ2 on hostile matrices?

The paper's Section VI-A attributes PR02R's FRSZ2 failure to ordering:
HV15R has an "extremely similar value distribution" but its non-zero
ordering "may lead neighboring Krylov vector values to have a similar
magnitude, mitigating the effects observed in PR02R".  This bench tests
the actionable consequence: apply a magnitude-grouping (and, for
contrast, a bandwidth-reducing RCM) permutation to PR02R and measure
FRSZ2's convergence.

Expected outcome: magnitude grouping collapses most of FRSZ2's
iteration penalty (the blocks stop mixing exponents); RCM — which
clusters by *connectivity*, blind to the scattered scale spikes — does
not.  float64 is ordering-invariant, confirming the effect is purely a
storage-format artifact.
"""

import numpy as np

from repro.bench import format_table
from repro.solvers import CbGmres, exponent_spread_features, make_problem
from repro.sparse import magnitude_ordering, permute_system, reverse_cuthill_mckee


def test_ablation_reordering_pr02r(benchmark, paper_report):
    p = make_problem("PR02R")

    def run():
        orderings = {
            "original": None,
            "magnitude-grouped": magnitude_ordering(np.abs(p.b)),
            "RCM": reverse_cuthill_mckee(p.a),
        }
        rows = []
        for label, perm in orderings.items():
            if perm is None:
                a, b = p.a, p.b
            else:
                a, b = permute_system(p.a, p.b, perm)
            kill = exponent_spread_features(b / np.linalg.norm(b)).frsz2_kill_fraction
            frsz2 = CbGmres(a, "frsz2_32", stall_restarts=10).solve(b, p.target_rrn)
            f64 = CbGmres(a, "float64", stall_restarts=10).solve(b, p.target_rrn)
            rows.append(
                (
                    label,
                    f"{kill:.1%}",
                    f64.iterations,
                    frsz2.iterations if frsz2.converged else 0,
                    f"{frsz2.iterations / f64.iterations:.2f}" if frsz2.converged else "-",
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    paper_report(
        format_table(
            "Ablation — reordering PR02R (frsz2_32 rescue)",
            ["ordering", "blocks w/ killed members", "float64 iters", "frsz2_32 iters", "frsz2/f64"],
            rows,
        )
    )
    by = {r[0]: r for r in rows}
    # float64 is ordering-invariant (within a couple of iterations)
    assert abs(by["original"][2] - by["magnitude-grouped"][2]) <= 3
    # magnitude grouping collapses the penalty
    assert 0 < by["magnitude-grouped"][3] < by["original"][3] / 1.5
    # connectivity-based RCM does not address the scale mixing
    assert by["RCM"][3] == 0 or by["RCM"][3] > by["magnitude-grouped"][3]
