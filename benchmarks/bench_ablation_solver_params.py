"""Ablations over the solver parameters the paper fixes.

* Restart length ``m``: the paper pins m = 100 "to limit the memory
  requirements" (Section V-B, footnote 5).  The sweep exposes the
  trade-off the choice balances: short restarts discard subspace
  information (more iterations), long ones grow the basis traffic per
  iteration (the orthogonalization reads j vectors at step j) and the
  Krylov-basis memory footprint.
* Re-orthogonalization threshold ``eta`` (Fig. 1 step 7): large eta
  re-orthogonalizes nearly always (robust, doubles the basis reads),
  small eta nearly never (cheap, risks losing orthogonality with a
  lossy basis).
"""

import numpy as np

from repro.bench import format_table
from repro.gpu import GmresTimingModel
from repro.solvers import CbGmres, make_problem

RESTARTS = (25, 50, 100, 200)
ETAS = (0.1, 2.0 ** -0.5, 0.99)


def test_ablation_restart_length(benchmark, paper_report):
    p = make_problem("atmosmodd")
    model = GmresTimingModel()

    def run():
        rows = []
        for m in RESTARTS:
            res = CbGmres(p.a, "frsz2_32", m=m).solve(p.b, p.target_rrn)
            t = model.time_stats(res.stats, "frsz2_32").total_seconds
            basis_mb = m * res.stats.n * res.stats.bits_per_value / 8 / 1e6
            rows.append(
                (
                    m,
                    res.iterations,
                    "yes" if res.converged else "no",
                    t * 1e3,
                    basis_mb,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    paper_report(
        format_table(
            "Ablation — restart length m on atmosmodd (frsz2_32 basis)",
            ["m", "iterations", "converged", "modeled ms", "basis MB"],
            rows,
        )
    )
    by_m = {r[0]: r for r in rows}
    assert all(r[2] == "yes" for r in rows)
    # shorter restarts cost iterations
    assert by_m[25][1] >= by_m[100][1]
    # basis memory grows linearly with m (the paper's reason for m=100)
    assert by_m[200][4] > by_m[100][4] > by_m[25][4]


def test_ablation_reorthogonalization_threshold(benchmark, paper_report):
    p = make_problem("atmosmodd")

    def run():
        rows = []
        for eta in ETAS:
            res = CbGmres(p.a, "frsz2_32", eta=eta).solve(p.b, p.target_rrn)
            rows.append(
                (
                    f"{eta:.3f}",
                    res.iterations,
                    "yes" if res.converged else "no",
                    res.stats.reorthogonalizations,
                    res.stats.basis_reads,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    paper_report(
        format_table(
            "Ablation — re-orthogonalization threshold eta (Fig. 1 step 7)",
            ["eta", "iterations", "converged", "re-orthogonalizations", "basis reads"],
            rows,
        )
    )
    assert all(r[2] == "yes" for r in rows)
    reorths = [r[3] for r in rows]
    # larger eta can only trigger more second passes
    assert reorths[0] <= reorths[1] <= reorths[2]
    # eta ~ 1 pays extra basis reads
    assert rows[2][4] >= rows[1][4]
