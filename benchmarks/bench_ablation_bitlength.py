"""Ablation: FRSZ2 bit length l (paper Section IV-C).

The paper evaluates l in {16, 21, 32} and concludes: 16 is fast but
imprecise, 32 is the sweet spot, 21 pays the straddling-access penalty
without a performance return ("only useful in case frsz2_32 would not
fit in GPU memory").  This bench sweeps l across both aligned and
straddling values, reporting storage, accuracy, modeled H100 throughput
and end-to-end iterations on atmosmodd.
"""

import numpy as np
import pytest

from repro.accessor import accessor_factory
from repro.bench import format_table
from repro.core import FRSZ2
from repro.gpu import H100_PCIE
from repro.gpu.kernels import format_cost, read_kernel_cost
from repro.solvers import CbGmres, make_problem

BIT_LENGTHS = (12, 16, 21, 24, 32, 40, 48)


def test_ablation_bit_length_quality_and_model(benchmark, paper_report):
    rng = np.random.default_rng(1)
    x = rng.standard_normal(1 << 16)
    x /= np.linalg.norm(x)

    def run():
        rows = []
        for l in BIT_LENGTHS:
            codec = FRSZ2(l)
            y = codec.roundtrip(x)
            err = float(np.max(np.abs(y - x)))
            fmt = format_cost(f"frsz2_{l}")
            t = read_kernel_cost(fmt, 1 << 28, 1.0).time_on(H100_PCIE)
            rows.append(
                (
                    l,
                    "aligned" if fmt.aligned else "straddling",
                    fmt.stored_bits,
                    err,
                    (1 << 28) / t / 1e9,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    paper_report(
        format_table(
            "Ablation — bit length l: storage, accuracy, modeled throughput",
            ["l", "layout", "bits/value", "max abs err", "Gvalues/s (model)"],
            rows,
        )
    )
    by_l = {r[0]: r for r in rows}
    # accuracy improves monotonically with l
    errs = [r[3] for r in rows]
    assert all(a >= b for a, b in zip(errs, errs[1:]))
    # the paper's frsz2_21 finding: no faster than frsz2_32 despite
    # a third less data
    assert by_l[21][4] <= by_l[32][4] * 1.02
    # aligned l=16 is the fastest
    assert by_l[16][4] == max(r[4] for r in rows)


def test_ablation_bit_length_end_to_end(benchmark, paper_report):
    """Iterations to target with an l-bit basis (atmosmodd).

    Reproduces the Section VI note that frsz2_21's convergence sits
    between float16 and frsz2_32.
    """
    p = make_problem("atmosmodd")

    def run():
        rows = []
        for fmtname in ("float16", "frsz2_16", "frsz2_21", "frsz2_32", "float64"):
            res = CbGmres(p.a, fmtname, max_iter=4000).solve(p.b, p.target_rrn)
            rows.append(
                (fmtname, res.iterations, "yes" if res.converged else "no")
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    paper_report(
        format_table(
            "Ablation — bit length end-to-end on atmosmodd",
            ["storage", "iterations", "converged"],
            rows,
        )
    )
    by = {r[0]: r[1] for r in rows if r[2] == "yes"}
    assert by["frsz2_32"] <= by["frsz2_21"] <= by["float16"]


@pytest.mark.parametrize("l", [16, 21, 32])
def test_ablation_bit_length_compress_throughput(benchmark, l):
    rng = np.random.default_rng(l)
    x = rng.standard_normal(1 << 20)
    codec = FRSZ2(l)
    benchmark(codec.compress, x)
