"""Fig. 9: convergence histories of FRSZ2's best and worst matrices.

* Fig. 9a (atmosmodm): the implicit residual estimate is corrected at
  every restart — visible jumps for all compressed formats — and
  frsz2_32 recovers fastest, ordered by significand bits.
* Fig. 9b (PR02R): frsz2_32 follows float64/float32 down to a plateau,
  then stagnates for a long stretch (the shared block exponent destroys
  the small Krylov components); float16 never comes close.
"""

from repro.bench import convergence_histories, format_series, format_table

FORMATS = ("float64", "frsz2_32", "float32", "float16")


def _series(results):
    return {
        fmt: [(int(i), float(v)) for i, v in zip(*r.history_arrays())]
        for fmt, r in results.items()
    }


def test_fig9a_best_case_atmosmodm(benchmark, paper_report):
    results = benchmark.pedantic(
        convergence_histories,
        args=("atmosmodm", FORMATS),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    paper_report(
        format_series(
            "Fig. 9a — atmosmodm residual norm development",
            "iteration",
            _series(results),
            max_points=30,
        )
    )
    iters = {f: r.iterations for f, r in results.items()}
    paper_report(
        format_table(
            "Fig. 9a summary",
            ["storage", "iterations", "overhead vs float64"],
            [(f, it, it / iters["float64"]) for f, it in iters.items()],
        )
    )
    # ordering by significand bits (paper: "sorted by the number of
    # significand bits for each compression scheme")
    assert iters["float64"] <= iters["frsz2_32"] <= iters["float32"] <= iters["float16"]
    # restart correction jumps exist for compressed storage
    hist = results["frsz2_32"].history
    jumps = sum(
        1
        for a, b in zip(hist, hist[1:])
        if b.kind == "explicit" and a.kind == "implicit" and b.rrn > a.rrn * 1.2
    )
    assert jumps >= 1


def test_fig9b_worst_case_pr02r(benchmark, paper_report):
    results = benchmark.pedantic(
        convergence_histories,
        args=("PR02R", FORMATS),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    paper_report(
        format_series(
            "Fig. 9b — PR02R residual norm development",
            "iteration",
            _series(results),
            max_points=30,
        )
    )
    r64, rf = results["float64"], results["frsz2_32"]
    r32, r16 = results["float32"], results["float16"]
    paper_report(
        format_table(
            "Fig. 9b summary",
            ["storage", "iterations", "final RRN", "converged"],
            [
                (f, r.iterations, r.final_rrn, "yes" if r.converged else "no")
                for f, r in results.items()
            ],
        )
    )
    # float32 follows float64; frsz2_32 eventually converges but needs
    # several times the iterations; float16 never converges
    assert r64.converged and r32.converged and rf.converged
    assert r32.iterations <= r64.iterations * 1.5
    assert rf.iterations > 3 * r64.iterations
    assert not r16.converged
    # stagnation plateau: the middle third of frsz2_32's history improves
    # the residual by far less than float64 does over its whole solve
    its, rrns = rf.history_arrays("explicit")
    mid = rrns[len(rrns) // 3 : 2 * len(rrns) // 3]
    if mid.size >= 2:
        assert mid[-1] > mid[0] * 1e-3  # less than 3 decades in the plateau
