"""Ablation: FRSZ2 block size (paper Section IV-C / V-D).

The paper mandates BS = 32 on NVIDIA GPUs — one block per warp — and
reports that "the end-to-end runtime worsens with block sizes different
than 32 elements".  Two effects pull in opposite directions:

* smaller blocks -> tighter shared exponents (better accuracy, possibly
  fewer iterations) but more exponent-stream overhead (Eq. 3);
* larger blocks -> less overhead but coarser exponents, and on a GPU
  the e_max reduction leaves the warp (shared memory + sync).

This bench measures both sides on atmosmodd: end-to-end iterations with
a custom-block-size FRSZ2 basis, plus a device-model cost including the
cross-warp reduction penalty for BS > 32.
"""

import numpy as np
import pytest

from repro.accessor import accessor_factory
from repro.bench import format_table
from repro.core import FRSZ2
from repro.gpu import H100_PCIE
from repro.gpu.kernels import KernelCost, format_cost
from repro.solvers import CbGmres, make_problem

BLOCK_SIZES = (4, 8, 16, 32, 64, 128)


def _model_ops(bs: int) -> "tuple[float, float]":
    """(decompress ops/value, bandwidth derate) for block size bs.

    BS <= 32 keeps the exponent in-warp; BS > 32 loses the paper's
    guarantee that "e_max is cached for all threads of the warp"
    (Section IV-C opt. 2): the reduction needs a shared-memory round
    trip during compression and the decompression exponent reuse spans
    warps, costing both instructions and streaming efficiency.
    """
    base = format_cost("frsz2_32").decompress_ops
    if bs > 32:
        return base + 8, 0.996 * 0.94
    return base, 0.996


def test_ablation_block_size_end_to_end(benchmark, paper_report):
    p = make_problem("atmosmodd")

    def run():
        rows = []
        base_time = None
        for bs in BLOCK_SIZES:
            factory = accessor_factory("frsz2_32", block_size=bs)
            res = CbGmres(p.a, "frsz2_32", accessor_factory=factory).solve(
                p.b, p.target_rrn
            )
            bits = 32 + 32.0 / bs  # Eq. 3 storage per value
            ops, derate = _model_ops(bs)
            # modeled per-iteration basis traffic cost on the H100
            per_read = KernelCost(
                bytes_moved=p.a.n * bits / 8,
                fp64_flops=2 * p.a.n,
                int_ops=p.a.n * ops,
                bw_derate=derate,
            ).time_on(H100_PCIE)
            total = res.stats.basis_reads * per_read
            rows.append((bs, bits, res.iterations, res.converged, total * 1e3))
            if bs == 32:
                base_time = total
        return rows, base_time

    rows, base_time = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    paper_report(
        format_table(
            "Ablation — FRSZ2 block size on atmosmodd (end-to-end)",
            ["BS", "bits/value", "iterations", "converged", "modeled basis-read ms"],
            rows,
        )
    )
    by_bs = {r[0]: r for r in rows}
    assert all(r[3] for r in rows)  # every block size converges here
    # BS=32 is the best end-to-end choice (paper Section V-D)
    best = min(rows, key=lambda r: r[4])
    assert best[0] == 32
    # larger blocks pay in iterations or accuracy, smaller in footprint
    assert by_bs[4][1] > by_bs[32][1]


@pytest.mark.parametrize("bs", [8, 32, 128])
def test_ablation_block_size_codec_throughput(benchmark, bs):
    """Host-side codec throughput across block sizes."""
    rng = np.random.default_rng(bs)
    x = rng.standard_normal(1 << 20)
    codec = FRSZ2(32, block_size=bs)
    comp = codec.compress(x)
    benchmark(codec.decompress, comp)


def test_ablation_block_size_accuracy(benchmark, paper_report):
    """Smaller blocks retain more accuracy on mixed-magnitude data."""
    rng = np.random.default_rng(0)
    x = rng.standard_normal(1 << 16) * 10.0 ** rng.integers(-4, 4, 1 << 16)

    def run():
        rows = []
        for bs in BLOCK_SIZES:
            y = FRSZ2(32, block_size=bs).roundtrip(x)
            nz = x != 0
            med = float(np.median(np.abs(y[nz] - x[nz]) / np.abs(x[nz])))
            rows.append((bs, med))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    paper_report(
        format_table(
            "Ablation — block size vs median pointwise error",
            ["BS", "median rel err"],
            rows,
        )
    )
    errs = [r[1] for r in rows]
    assert all(a <= b * 1.001 for a, b in zip(errs, errs[1:]))
