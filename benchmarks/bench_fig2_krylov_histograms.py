"""Fig. 2: histograms of Krylov-vector values and exponents (atmosmodd).

The paper's observation: the *values* of the Krylov basis vectors are
normally distributed and uncorrelated (nothing for a predictor/transform
to exploit), but the *exponents* concentrate on a few common values —
the asymmetry FRSZ2's exponent-only decorrelation is built on.
"""

import numpy as np

from repro.bench import format_histogram, krylov_histograms


def test_fig2_value_and_exponent_histograms(benchmark, paper_report):
    data = benchmark.pedantic(
        krylov_histograms,
        kwargs={"matrix": "atmosmodd", "iterations": (0, 10)},
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    for j, (hist, edges, exp_vals, exp_counts) in sorted(data.items()):
        centers = (edges[:-1] + edges[1:]) / 2
        paper_report(
            format_histogram(
                f"Fig. 2 — Krylov vector values, atmosmodd, iteration {j}",
                [f"{c:+.2e}" for c in centers],
                hist,
            )
        )
        paper_report(
            format_histogram(
                f"Fig. 2 — Krylov vector base-2 exponents, atmosmodd, iteration {j}",
                exp_vals.tolist(),
                exp_counts,
            )
        )
        # the paper's asymmetry: few distinct exponents carry most values
        top4 = np.sort(exp_counts)[-4:].sum()
        assert top4 / exp_counts.sum() > 0.5
