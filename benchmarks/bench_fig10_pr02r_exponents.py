"""Fig. 10: base-2 exponent histogram of PR02R's non-zero values.

The paper's PR02R spans exponents from -178 to 36; values sharing an
FRSZ2 block with a much larger neighbour lose their significand bits in
the normalization step, which is the paper's explanation for the Fig. 9b
stagnation.  The analog reproduces the *property* (a huge, multi-modal
exponent range; ~60+ binades) at a float64-solvable scale — see
DESIGN.md for the substitution note.
"""

from repro.bench import format_histogram, format_table, matrix_exponent_histogram


def test_fig10_exponent_histogram(benchmark, paper_report):
    edges, hist = benchmark.pedantic(
        matrix_exponent_histogram,
        kwargs={"matrix": "PR02R", "bin_width": 4},
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    paper_report(
        format_histogram(
            "Fig. 10 — base-2 exponent histogram of PR02R non-zeros",
            [int(e) for e in edges],
            hist,
        )
    )
    span = int(edges[-1] + 4 - edges[0])
    paper_report(
        format_table(
            "Fig. 10 summary",
            ["quantity", "analog", "paper"],
            [
                ("min exponent", int(edges[0]), -178),
                ("max exponent", int(edges[-1] + 4), 36),
                ("span (binades)", span, 214),
            ],
        )
    )
    assert span > 55


def test_fig10_contrast_hv15r_same_range_different_ordering(benchmark, paper_report):
    """HV15R has a similar exponent histogram but a friendly ordering —
    the paper's explanation for why it does not hurt FRSZ2."""
    e_pr, h_pr = benchmark.pedantic(
        matrix_exponent_histogram, args=("PR02R",), rounds=1, iterations=1, warmup_rounds=0
    )
    e_hv, h_hv = matrix_exponent_histogram("HV15R")
    span_pr = e_pr[-1] - e_pr[0]
    span_hv = e_hv[-1] - e_hv[0]
    paper_report(
        format_table(
            "Fig. 10 contrast — PR02R vs HV15R exponent spans",
            ["matrix", "span (binades)"],
            [("PR02R", int(span_pr)), ("HV15R", int(span_hv))],
        )
    )
    assert abs(int(span_pr) - int(span_hv)) < 25
