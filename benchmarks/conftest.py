"""Benchmark-suite plumbing.

Every benchmark regenerates one table or figure of the paper and emits
its rows through the ``paper_report`` fixture, which (a) saves them under
``benchmarks/results/<test>.txt`` and (b) replays them in the pytest
terminal summary so ``pytest benchmarks/ --benchmark-only`` output
contains every reproduced table/figure even with output capture on.

Scale control: set ``REPRO_SCALE=smoke|default|paper`` (see
repro.sparse.suite).
"""

from pathlib import Path
from typing import List, Tuple

import pytest

_REPORTS: List[Tuple[str, str]] = []
_RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def paper_report(request):
    """Callable collecting report blocks for this benchmark."""
    node = request.node.name
    first = True

    def emit(text: str) -> None:
        nonlocal first
        _REPORTS.append((node, text))
        _RESULTS_DIR.mkdir(exist_ok=True)
        path = _RESULTS_DIR / f"{node}.txt"
        mode = "w" if first else "a"
        with open(path, mode) as fh:
            fh.write(text + "\n\n")
        first = False

    return emit


def pytest_terminal_summary(terminalreporter):
    if not _REPORTS:
        return
    terminalreporter.section("reproduced paper tables and figures")
    for node, text in _REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"--- {node} ---")
        for line in text.splitlines():
            terminalreporter.write_line(line)
