"""Fig. 11: modeled end-to-end speedup over float64 storage (H100).

Combines measured iteration structure with the GPU timing model (the
repro substitution for wall-clock on real hardware; DESIGN.md).  Paper
shapes this reproduces:

* frsz2_32 is faster than float32 *and* float64 on the atmosmod group;
* outside that group frsz2_32 trails float32;
* bars vanish for formats that missed the target (float16 on PR02R and
  StocF-1465);
* the float32 average beats the frsz2_32 average over the full suite
  (PR02R drags frsz2_32 down), and dropping PR02R closes the gap —
  paper: float32 1.16 vs frsz2_32 1.09, rising to 1.16 without PR02R.
"""

import math

from repro.bench import FIG7_FORMATS, figure11_rows, format_table
from repro.sparse import resolve_scale


def test_fig11_speedups(benchmark, paper_report):
    scale = resolve_scale()
    summary = benchmark.pedantic(
        figure11_rows, args=(scale,), rounds=1, iterations=1, warmup_rounds=0
    )
    paper_report(
        format_table(
            f"Fig. 11 — modeled speedup vs float64 (scale={scale}; '-' = not converged)",
            ["matrix"] + list(FIG7_FORMATS),
            summary.per_matrix,
        )
    )
    paper_report(
        format_table(
            "Fig. 11 averages",
            ["format", "mean speedup", "mean w/o PR02R", "paper mean", "paper w/o PR02R"],
            [
                (
                    f,
                    summary.mean_speedup[f],
                    summary.mean_speedup_without_pr02r[f],
                    {"float32": 1.16, "frsz2_32": 1.09}.get(f, float("nan")),
                    {"float32": 1.16, "frsz2_32": 1.16}.get(f, float("nan")),
                )
                for f in FIG7_FORMATS
            ],
        )
    )

    rows = {r[0]: r for r in summary.per_matrix}
    col = {f: 1 + i for i, f in enumerate(FIG7_FORMATS)}

    # atmosmod group: frsz2_32 beats float32 and float64
    for name in ("atmosmodd", "atmosmodj", "atmosmodl", "atmosmodm"):
        row = rows[name]
        assert row[col["frsz2_32"]] > row[col["float32"]]
        assert row[col["frsz2_32"]] > 1.0

    # on the reactive-flow/porous problems frsz2_32 trails float32
    # (cfd2/lung2/parabolic_fem deviate mildly: the analogs give frsz2's
    # extra significand bits a small genuine iteration advantage there —
    # recorded in EXPERIMENTS.md)
    for name in ("HV15R", "lung2", "PR02R", "RM07R", "StocF-1465"):
        row = rows[name]
        if not math.isnan(row[col["frsz2_32"]]):
            assert row[col["frsz2_32"]] <= row[col["float32"]] * 1.05

    # failed bars removed
    assert math.isnan(rows["PR02R"][col["float16"]])
    assert math.isnan(rows["StocF-1465"][col["float16"]])

    # averages: float32 >= frsz2_32 over the suite; gap closes w/o PR02R
    assert summary.mean_speedup["float32"] >= summary.mean_speedup["frsz2_32"]
    gap_all = summary.mean_speedup["float32"] - summary.mean_speedup["frsz2_32"]
    gap_no_pr = (
        summary.mean_speedup_without_pr02r["float32"]
        - summary.mean_speedup_without_pr02r["frsz2_32"]
    )
    assert gap_no_pr < gap_all
