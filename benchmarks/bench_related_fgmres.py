"""Related-work study: CB-GMRES vs. FGMRES-with-compressed-Z (ref [17]).

The paper's related work contrasts two ways of compressing Krylov data:
CB-GMRES compresses the orthonormal basis V (maximum traffic savings,
convergence risk), Agullo et al. [17] compress the preconditioned basis
Z inside flexible GMRES ("improves the numerical stability at the price
of reduced runtime benefits").  This bench measures both sides on
FRSZ2's best (atmosmodd) and worst (PR02R) problems.
"""

from repro.bench import format_table
from repro.gpu import GmresTimingModel
from repro.solvers import CbGmres, FlexibleGmres, make_problem


def test_related_work_cb_vs_fgmres(benchmark, paper_report):
    model = GmresTimingModel()

    def run():
        rows = []
        for matrix in ("atmosmodd", "PR02R"):
            p = make_problem(matrix)
            base = CbGmres(p.a, "float64").solve(p.b, p.target_rrn)
            base_t = model.time_result(base).total_seconds
            cb = CbGmres(p.a, "frsz2_32", stall_restarts=10).solve(p.b, p.target_rrn)
            fg = FlexibleGmres(p.a, "frsz2_32", stall_restarts=10).solve(
                p.b, p.target_rrn
            )
            for label, r in (("cb-gmres[frsz2_32]", cb), ("fgmres[frsz2_32]", fg)):
                t = model.time_stats(r.stats, "frsz2_32").total_seconds
                rows.append(
                    (
                        matrix,
                        label,
                        r.iterations,
                        "yes" if r.converged else "no",
                        base.iterations,
                        f"{base_t / t:.3f}" if r.converged else "-",
                    )
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    paper_report(
        format_table(
            "Related work — compress V (CB-GMRES) vs compress Z (FGMRES, ref [17])",
            ["matrix", "solver", "iterations", "converged", "f64 iters", "modeled speedup"],
            rows,
        )
    )
    by = {(r[0], r[1]): r for r in rows}
    # stability: FGMRES tracks float64 iterations even on PR02R
    fg_pr = by[("PR02R", "fgmres[frsz2_32]")]
    cb_pr = by[("PR02R", "cb-gmres[frsz2_32]")]
    assert fg_pr[2] <= fg_pr[4] * 1.3
    assert cb_pr[2] > 2 * fg_pr[2]
    # runtime: CB-GMRES keeps the larger speedup where it converges well
    fg_at = by[("atmosmodd", "fgmres[frsz2_32]")]
    cb_at = by[("atmosmodd", "cb-gmres[frsz2_32]")]
    assert float(cb_at[5]) > float(fg_at[5])
