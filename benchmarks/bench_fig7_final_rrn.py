"""Fig. 7: final relative residual norm per matrix and storage format.

The paper's outcome this reproduces: every format reaches the target on
every matrix except float16 on PR02R and StocF-1465, where the
information loss is too significant.
"""

import math

from repro.bench import FIG7_FORMATS, figure7_rows, format_table
from repro.sparse import resolve_scale


def test_fig7_final_rrn(benchmark, paper_report):
    scale = resolve_scale()
    rows = benchmark.pedantic(
        figure7_rows, args=(scale,), rounds=1, iterations=1, warmup_rounds=0
    )
    paper_report(
        format_table(
            f"Fig. 7 — final RRN per matrix (scale={scale}; '-' = not reached)",
            ["matrix", "target"] + list(FIG7_FORMATS),
            rows,
        )
    )
    by_name = {r[0]: r for r in rows}
    idx16 = 2 + FIG7_FORMATS.index("float16")
    idx_frsz2 = 2 + FIG7_FORMATS.index("frsz2_32")
    # float16 fails exactly on the two hard problems
    assert math.isnan(by_name["PR02R"][idx16])
    assert math.isnan(by_name["StocF-1465"][idx16])
    for name, row in by_name.items():
        target = row[1]
        # float64, float32 and frsz2_32 reach the target everywhere
        for col in (2, 3, idx_frsz2):
            assert not math.isnan(row[col]), f"{name} col {col}"
            assert row[col] <= target * (1 + 1e-9)
        if name not in ("PR02R", "StocF-1465"):
            assert not math.isnan(row[idx16]), name
